package exec

import (
	"math/rand"
	"testing"

	"numacs/internal/colstore"
	"numacs/internal/placement"
	"numacs/internal/topology"
)

// buildKernelColumn makes a real dictionary-encoded column with a skewed
// pseudo-random value distribution (repeats plus a long tail) so predicate
// windows hit a mix of dense and empty dictionary regions.
func buildKernelColumn(t *testing.T, rows int, seed int64) *colstore.Column {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, rows)
	for i := range vals {
		if rng.Intn(3) == 0 {
			vals[i] = int64(rng.Intn(50)) // hot values
		} else {
			vals[i] = rng.Int63n(20_000)
		}
	}
	return colstore.Build("K", vals, false)
}

// checkSpanCoverage asserts the plan is a sorted, gap-free, overlap-free
// cover of [0, rows).
func checkSpanCoverage(t *testing.T, spans []KernelSpan, rows int) {
	t.Helper()
	if len(spans) == 0 {
		t.Fatal("empty plan")
	}
	if spans[0].From != 0 || spans[len(spans)-1].To != rows {
		t.Fatalf("plan does not span [0,%d): %+v", rows, spans)
	}
	for i, sp := range spans {
		if sp.From >= sp.To {
			t.Fatalf("span %d empty or inverted: %+v", i, sp)
		}
		if i > 0 && sp.From != spans[i-1].To {
			t.Fatalf("gap/overlap between span %d and %d: %+v", i-1, i, spans)
		}
	}
}

// TestPlanSpansCoverRowSpace: for IVP-partitioned, replicated, and unplaced
// columns, across concurrency hints, the plan must cover the row space
// exactly once in ascending order.
func TestPlanSpansCoverRowSpace(t *testing.T) {
	m := topology.FourSocketIvyBridge()
	p := placement.New(m)

	ivp := colstore.NewSynthetic("IVP", 40_000, 1<<12, false)
	p.PlaceIVP(ivp, []int{0, 1, 2, 3})
	rep := colstore.NewSynthetic("REP", 40_000, 1<<12, false)
	p.PlaceReplicated(rep, []int{0, 2})
	unplaced := colstore.NewSynthetic("UNP", 1_000, 1<<8, false)

	for _, col := range []*colstore.Column{ivp, rep, unplaced} {
		for _, hint := range []int{0, 1, 3, 16} {
			spans := PlanSpans(col, nil, hint)
			checkSpanCoverage(t, spans, col.Rows)
			if hint > 0 && len(spans) < hint {
				t.Fatalf("%s hint=%d: only %d spans", col.Name, hint, len(spans))
			}
		}
	}

	// A loaded memory controller reshapes replica slices but must not break
	// coverage.
	spans := PlanSpans(rep, []float64{9, 0, 0, 0}, 8)
	checkSpanCoverage(t, spans, rep.Rows)

	// Span sockets inherit the partition sockets of the underlying plan.
	for _, sp := range PlanSpans(rep, nil, 4) {
		if sp.Socket != 0 && sp.Socket != 2 {
			t.Fatalf("replica span on socket %d, want 0 or 2", sp.Socket)
		}
	}
}

// TestScanKernelMatchesWholeColumnScan: running the planned span sequence
// through ScanKernel must be bit-identical to one whole-column ScanPositions,
// for windows that clip the dictionary, miss it entirely, and cover it.
func TestScanKernelMatchesWholeColumnScan(t *testing.T) {
	col := buildKernelColumn(t, 30_000, 17)
	spans := PlanSpans(col, nil, 7)
	checkSpanCoverage(t, spans, col.Rows)
	for _, pr := range [][2]int64{{0, 49}, {1000, 5000}, {-100, -1}, {30_000, 40_000}, {-1 << 40, 1 << 40}, {7, 7}} {
		var want []uint32
		if lo, hi, ok := col.EncodePredicate(pr[0], pr[1]); ok {
			want = col.ScanPositions(lo, hi, 0, col.Rows, nil)
		}
		got := ScanKernel(col, pr[0], pr[1], spans, nil)
		if len(got) != len(want) {
			t.Fatalf("[%d,%d]: %d matches, want %d", pr[0], pr[1], len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("[%d,%d]: position %d: got %d, want %d", pr[0], pr[1], i, got[i], want[i])
			}
		}
	}
}

// TestSharedScanKernelMatchesPrivateKernels: each cohort member's output must
// be bit-identical to a private ScanKernel over the same spans, including a
// member whose window misses the dictionary.
func TestSharedScanKernelMatchesPrivateKernels(t *testing.T) {
	col := buildKernelColumn(t, 20_000, 23)
	spans := PlanSpans(col, nil, 5)
	preds := [][2]int64{{0, 30}, {500, 9000}, {-50, -10}, {10, 15_000}, {19_999, 19_999}}
	outs := SharedScanKernel(col, preds, spans, make([][]uint32, len(preds)))
	if len(outs) != len(preds) {
		t.Fatalf("%d output lists, want %d", len(outs), len(preds))
	}
	for m, pr := range preds {
		want := ScanKernel(col, pr[0], pr[1], spans, nil)
		if len(outs[m]) != len(want) {
			t.Fatalf("member %d [%d,%d]: %d matches, want %d", m, pr[0], pr[1], len(outs[m]), len(want))
		}
		for i := range want {
			if outs[m][i] != want[i] {
				t.Fatalf("member %d: position %d differs", m, i)
			}
		}
	}
}

// TestMaterializeKernelMatchesPointLookups: the batched gather must agree
// with per-row Value at every qualifying position.
func TestMaterializeKernelMatchesPointLookups(t *testing.T) {
	col := buildKernelColumn(t, 10_000, 31)
	spans := PlanSpans(col, nil, 3)
	positions := ScanKernel(col, 0, 49, spans, nil)
	if len(positions) == 0 {
		t.Fatal("fixture predicate matched nothing")
	}
	vals := MaterializeKernel(col, positions)
	if len(vals) != len(positions) {
		t.Fatalf("%d values for %d positions", len(vals), len(positions))
	}
	for i, pos := range positions {
		if want := col.Value(int(pos)); vals[i] != want {
			t.Fatalf("position %d: got %d, want %d", pos, vals[i], want)
		}
		if vals[i] < 0 || vals[i] > 49 {
			t.Fatalf("position %d: value %d outside predicate [0,49]", pos, vals[i])
		}
	}
	if got := MaterializeKernel(col, nil); len(got) != 0 {
		t.Fatalf("empty position list produced %d values", len(got))
	}
}
