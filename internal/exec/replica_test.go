package exec_test

// Engine-level test for replica-aware scheduling: under sustained load, the
// scan fan-out over a replicated column must distribute tasks (and thus MC
// traffic) across all replica sockets, not pile onto the primary copy.

import (
	"testing"

	"numacs/internal/colstore"
	"numacs/internal/core"
	"numacs/internal/topology"
)

func TestScanTasksDistributeAcrossReplicas(t *testing.T) {
	e := core.New(topology.FourSocketIvyBridge(), 1)
	c := colstore.NewSynthetic("HOT", 120_000, 1<<14, false)
	tbl := colstore.NewTable("TBL", []*colstore.Column{c})
	// Replicas on sockets 0 and 2 only; sockets 1 and 3 hold no copy.
	e.Placer.PlaceReplicated(c, []int{0, 2})

	done := 0
	var submit func()
	submit = func() {
		e.Submit(&core.Query{
			Table: tbl, Column: "HOT", Selectivity: 0.001,
			Parallel: true, Strategy: core.Bound, HomeSocket: done % 4,
			OnDone: func(float64) { done++; submit() },
		})
	}
	for i := 0; i < 128; i++ {
		submit()
	}
	e.Sim.Run(0.1)

	if done == 0 {
		t.Fatal("no queries completed")
	}
	mc := e.Counters.MCBytes
	if mc[0] == 0 || mc[2] == 0 {
		t.Fatalf("a replica socket served nothing: %v", mc)
	}
	// Both copies must carry comparable load: the weighted fan-out steers
	// toward headroom, so neither replica may dominate.
	hi, lo := mc[0], mc[2]
	if lo > hi {
		hi, lo = lo, hi
	}
	if hi > 3*lo {
		t.Fatalf("replica load imbalance: %v", mc)
	}
	// Non-replica sockets see only output writes and background, far below
	// the replica sockets' scan streams.
	for _, s := range []int{1, 3} {
		if mc[s] > lo/2 {
			t.Fatalf("socket %d without a replica carries scan load: %v", s, mc)
		}
	}
}
