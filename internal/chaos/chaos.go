// Package chaos is the fault-injection layer of the adversarial and
// degraded-hardware scenario suite: a declarative schedule of hardware and
// topology faults, applied to a running engine by a simulation actor. The
// faults it models are the ones the paper's adaptive machinery must degrade
// gracefully under rather than optimize for — a socket's worker pool going
// offline mid-run (its queued tasks drained and re-placed, its replicas
// invalidated), a memory controller thermally throttled to a fraction of its
// nominal bandwidth, and interconnect links degrading the same way.
//
// The injection hooks live in the layers themselves (sim.SetResourceCapacity,
// hw.SetMCScale / SetSocketLinkScale, sched.SetSocketOnline) and are
// zero-cost when no fault is scheduled: capacities are re-read by the
// allocator every step anyway, and the scheduler's offline path is a nil
// check until the first socket event. An engine with an empty schedule is
// bit-identical to one without the chaos layer (pinned by a harness golden
// test). Antagonist tenants, write storms, and burst arrivals — the workload-
// shaped faults — are composed in the harness's chaos-* experiments from the
// workload package instead; this package owns the hardware-shaped ones.
package chaos

import (
	"fmt"
	"sort"

	"numacs/internal/colstore"
	"numacs/internal/hw"
	"numacs/internal/placement"
	"numacs/internal/sched"
	"numacs/internal/trace"
)

// Kind is the fault class of one scheduled event.
type Kind int

const (
	// SocketOffline takes a socket's worker pool down: queued tasks are
	// drained and re-placed on online sockets, free workers park, and every
	// column replica on the socket is invalidated (dropped). The socket's
	// memory stays reachable — remote streams model the surviving cache-
	// coherent access path — so primaries on the dead socket degrade to
	// remote service rather than data loss.
	SocketOffline Kind = iota
	// SocketOnline returns an offline socket's workers to service. Replicas
	// dropped at the offline event are NOT restored — re-replication is the
	// adaptive placer's job, which is exactly the convergence the chaos
	// experiments assert.
	SocketOnline
	// MCThrottle scales a socket's memory-controller capacity to Factor x
	// nominal — a thermal event. Factor 1 restores it.
	MCThrottle
	// LinkThrottle scales every interconnect link touching the socket to
	// Factor x nominal. Factor 1 restores them.
	LinkThrottle
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case SocketOffline:
		return "socket-offline"
	case SocketOnline:
		return "socket-online"
	case MCThrottle:
		return "mc-throttle"
	case LinkThrottle:
		return "link-throttle"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one scheduled fault.
type Event struct {
	// At is the virtual time the fault fires.
	At float64
	// Kind is the fault class.
	Kind Kind
	// Socket is the faulted socket.
	Socket int
	// Factor is the capacity scale of throttle events (must be positive;
	// 1 restores nominal capacity). Ignored by the socket events.
	Factor float64
}

// Config is the declarative fault schedule. Events fire in time order; equal
// times fire in schedule order.
type Config struct {
	// Schedule lists the faults to inject.
	Schedule []Event
}

// Applied records one injected fault for observability and assertions.
type Applied struct {
	// Event echoes the fired event.
	Event
	// TasksReplaced counts queued tasks drained and re-placed by a
	// SocketOffline event.
	TasksReplaced int
	// ReplicasDropped counts column replicas invalidated by a SocketOffline
	// event.
	ReplicasDropped int
}

// Injector applies a fault schedule to a running engine. It is a simulation
// actor (core.Engine.EnableChaos registers it); each tick it fires every
// event whose time has arrived, in schedule order.
type Injector struct {
	// HW, Sched and Placer are the substrates the faults act on.
	HW     *hw.Hardware
	Sched  *sched.Scheduler
	Placer *placement.Placer
	// Columns lists the columns whose replicas socket faults invalidate.
	Columns []*colstore.Column

	schedule []Event
	next     int

	// Applied is the log of injected faults, oldest first.
	Applied []Applied

	// Decisions, when non-nil, is the flight recorder's decision log: every
	// injected fault is recorded with its blast radius (tasks re-placed,
	// replicas dropped, throttle factor).
	Decisions *trace.DecisionLog
}

// New validates a schedule and builds an injector over the given substrates.
// It panics on an unknown kind, an out-of-range socket, or a non-positive
// throttle factor — a bad schedule is a programming error, not a runtime
// condition.
func New(cfg Config, h *hw.Hardware, s *sched.Scheduler, p *placement.Placer, columns []*colstore.Column) *Injector {
	sockets := h.Machine.Sockets
	for i, ev := range cfg.Schedule {
		if ev.Socket < 0 || ev.Socket >= sockets {
			panic(fmt.Sprintf("chaos: event %d: socket %d out of range [0,%d)", i, ev.Socket, sockets))
		}
		switch ev.Kind {
		case SocketOffline, SocketOnline:
		case MCThrottle, LinkThrottle:
			if ev.Factor <= 0 {
				panic(fmt.Sprintf("chaos: event %d: %v needs a positive factor, got %v", i, ev.Kind, ev.Factor))
			}
		default:
			panic(fmt.Sprintf("chaos: event %d: unknown kind %d", i, int(ev.Kind)))
		}
	}
	schedule := append([]Event(nil), cfg.Schedule...)
	sort.SliceStable(schedule, func(i, j int) bool { return schedule[i].At < schedule[j].At })
	return &Injector{HW: h, Sched: s, Placer: p, Columns: columns, schedule: schedule}
}

// Pending returns the number of scheduled events that have not fired yet.
func (in *Injector) Pending() int { return len(in.schedule) - in.next }

// Tick implements sim.Actor: fire every due event.
func (in *Injector) Tick(now float64) {
	for in.next < len(in.schedule) && in.schedule[in.next].At <= now {
		in.apply(in.schedule[in.next], now)
		in.next++
	}
}

// apply injects one fault and logs it.
func (in *Injector) apply(ev Event, now float64) {
	a := Applied{Event: ev}
	switch ev.Kind {
	case SocketOffline:
		a.TasksReplaced = in.Sched.SetSocketOnline(ev.Socket, false)
		for _, col := range in.Columns {
			if in.Placer.DropReplica(col, ev.Socket) > 0 {
				a.ReplicasDropped++
			}
		}
	case SocketOnline:
		in.Sched.SetSocketOnline(ev.Socket, true)
	case MCThrottle:
		in.HW.SetMCScale(ev.Socket, ev.Factor)
	case LinkThrottle:
		in.HW.SetSocketLinkScale(ev.Socket, ev.Factor)
	}
	in.Applied = append(in.Applied, a)
	if in.Decisions != nil {
		cause := fmt.Sprintf("scheduled at %.1fms", ev.At*1e3)
		switch ev.Kind {
		case SocketOffline:
			cause = fmt.Sprintf("scheduled at %.1fms: %d queued tasks re-placed, %d replicas dropped",
				ev.At*1e3, a.TasksReplaced, a.ReplicasDropped)
		case MCThrottle, LinkThrottle:
			cause = fmt.Sprintf("scheduled at %.1fms: capacity scaled to %.0f%% of nominal",
				ev.At*1e3, ev.Factor*100)
		}
		in.Decisions.Record(trace.Decision{
			Time: now, Source: "chaos", Kind: ev.Kind.String(),
			Item: fmt.Sprintf("socket %d", ev.Socket), From: ev.Socket, To: ev.Socket,
			Cause: cause,
		})
	}
}
