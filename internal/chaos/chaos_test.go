package chaos

import (
	"testing"

	"numacs/internal/colstore"
	"numacs/internal/hw"
	"numacs/internal/metrics"
	"numacs/internal/placement"
	"numacs/internal/sched"
	"numacs/internal/sim"
	"numacs/internal/topology"
)

func testRig() (*sim.Engine, *hw.Hardware, *sched.Scheduler, *placement.Placer) {
	m := topology.FourSocketIvyBridge()
	e := sim.New(25e-6)
	h := hw.New(e, m)
	s := sched.New(h, metrics.New(m.Sockets))
	e.AddActor(s)
	return e, h, s, placement.New(m)
}

// Events fire when their time arrives, in order, and the log records what
// each one did.
func TestScheduleFiresInOrder(t *testing.T) {
	e, h, s, p := testRig()
	c := colstore.NewSynthetic("hot", 10000, 100, false)
	c.Synthetic = true
	p.PlaceColumnOnSocket(c, 0)
	p.AddReplica(c, 1)
	p.AddReplica(c, 2)

	in := New(Config{Schedule: []Event{
		// Deliberately out of time order: New sorts stably.
		{At: 200e-6, Kind: SocketOnline, Socket: 1},
		{At: 100e-6, Kind: SocketOffline, Socket: 1},
		{At: 100e-6, Kind: MCThrottle, Socket: 0, Factor: 0.5},
	}}, h, s, p, []*colstore.Column{c})
	e.AddActor(in)

	if in.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", in.Pending())
	}
	e.Run(150e-6)
	if in.Pending() != 1 {
		t.Fatalf("pending after first batch = %d, want 1", in.Pending())
	}
	if len(in.Applied) != 2 || in.Applied[0].Kind != SocketOffline || in.Applied[1].Kind != MCThrottle {
		t.Fatalf("applied log = %+v", in.Applied)
	}
	if in.Applied[0].ReplicasDropped != 1 {
		t.Fatalf("offline dropped %d replicas, want 1 (socket 1's)", in.Applied[0].ReplicasDropped)
	}
	if got := e.ResourceCapacity(h.MC[0]); got != 0.5*h.Machine.MCBandwidth {
		t.Fatalf("MC 0 capacity = %v, want half", got)
	}
	if s.SocketOnline(1) {
		t.Fatal("socket 1 should be offline")
	}
	// Socket 2's replica survives; socket 1's is gone and not restored.
	e.Run(250e-6)
	if in.Pending() != 0 {
		t.Fatalf("pending = %d after full schedule", in.Pending())
	}
	if !s.SocketOnline(1) {
		t.Fatal("socket 1 should be back online")
	}
	if got := len(c.ReplicaSockets); got != 2 { // primary + socket 2
		t.Fatalf("replica sockets = %v, want primary+2", c.ReplicaSockets)
	}
	for _, rs := range c.ReplicaSockets {
		if rs == 1 {
			t.Fatal("socket 1 replica should stay invalidated until the placer re-replicates")
		}
	}
}

// An empty schedule is inert: the injector never touches the engine.
func TestEmptyScheduleIsInert(t *testing.T) {
	e, h, s, p := testRig()
	in := New(Config{}, h, s, p, nil)
	e.AddActor(in)
	e.Run(1e-3)
	if len(in.Applied) != 0 || in.Pending() != 0 {
		t.Fatalf("empty schedule applied %d events", len(in.Applied))
	}
}

func TestBadSchedulesPanic(t *testing.T) {
	_, h, s, p := testRig()
	cases := []Config{
		{Schedule: []Event{{Kind: MCThrottle, Socket: 0, Factor: 0}}},
		{Schedule: []Event{{Kind: SocketOffline, Socket: 7}}},
		{Schedule: []Event{{Kind: Kind(99), Socket: 0}}},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: bad schedule should panic", i)
				}
			}()
			New(cfg, h, s, p, nil)
		}()
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		SocketOffline: "socket-offline",
		SocketOnline:  "socket-online",
		MCThrottle:    "mc-throttle",
		LinkThrottle:  "link-throttle",
	} {
		if k.String() != want {
			t.Fatalf("kind %d stringifies as %q", int(k), k.String())
		}
	}
}
