// Package join implements the Section 8 extension the paper announces as
// ongoing work ("we are working on extending our analysis and our envisioned
// design to incorporate more complex operators, such as joins ... what we
// need to consider additionally is the placement of the data structures used
// internally in the operator, and placing correlated data on the same socket
// or on nearby sockets").
//
// The package provides both layers in the same style as the rest of the
// repository: a real, tested hash-join over dictionary-encoded columns, and
// a NUMA-aware simulated execution built on the internal/exec operator
// pipeline — build and probe phases are exec operators whose task affinities
// derive from the data placement, including the placement of the
// operator-internal hash table. ExecuteStar composes a dimension scan, the
// join, and an aggregation into one scheduled statement.
package join

import (
	"fmt"

	"numacs/internal/colstore"
	"numacs/internal/core"
	"numacs/internal/exec"
	"numacs/internal/plan"
)

// ---- functional hash join ---------------------------------------------------

// HashTable is an open-addressing hash table from join-key values to build-
// side row ids (multi-map: repeated keys chain through the overflow list).
type HashTable struct {
	mask    uint64
	keys    []int64
	rows    []uint32
	used    []bool
	next    []int32 // overflow chain per slot, -1 terminated
	entries int
}

// BuildHashTable hashes every row of the build column.
func BuildHashTable(build *colstore.Column) *HashTable {
	size := 1
	for size < build.Rows*2 {
		size *= 2
	}
	ht := &HashTable{
		mask: uint64(size - 1),
		keys: make([]int64, size),
		rows: make([]uint32, size),
		used: make([]bool, size),
		next: make([]int32, size),
	}
	for i := range ht.next {
		ht.next[i] = -1
	}
	for i := 0; i < build.Rows; i++ {
		ht.insert(build.Value(i), uint32(i))
	}
	return ht
}

func hash64(k int64) uint64 {
	x := uint64(k)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

func (ht *HashTable) insert(key int64, row uint32) {
	slot := hash64(key) & ht.mask
	for ht.used[slot] {
		slot = (slot + 1) & ht.mask
	}
	ht.keys[slot] = key
	ht.rows[slot] = row
	ht.used[slot] = true
	ht.entries++
}

// Entries returns the number of build rows stored.
func (ht *HashTable) Entries() int { return ht.entries }

// SizeBytes returns the table's memory footprint.
func (ht *HashTable) SizeBytes() int64 {
	return int64(len(ht.keys))*(8+4+4) + int64(len(ht.used))
}

// ProbeValue appends the build rows whose key equals v.
func (ht *HashTable) ProbeValue(v int64, out []uint32) []uint32 {
	slot := hash64(v) & ht.mask
	for ht.used[slot] {
		if ht.keys[slot] == v {
			out = append(out, ht.rows[slot])
		}
		slot = (slot + 1) & ht.mask
	}
	return out
}

// Pair is one join match.
type Pair struct {
	BuildRow uint32
	ProbeRow uint32
}

// HashJoin joins two columns on value equality and returns all matching
// (build row, probe row) pairs in probe order.
func HashJoin(build, probe *colstore.Column) []Pair {
	ht := BuildHashTable(build)
	var out []Pair
	var hits []uint32
	for i := 0; i < probe.Rows; i++ {
		hits = ht.ProbeValue(probe.Value(i), hits[:0])
		for _, b := range hits {
			out = append(out, Pair{BuildRow: b, ProbeRow: uint32(i)})
		}
	}
	return out
}

// ---- NUMA-aware simulated execution ------------------------------------------

// Spec describes one simulated join execution. Both columns must be placed
// (PSMs populated). The hash table — the operator-internal structure the
// paper highlights — is placed per HTSockets: one socket for a centralized
// table, several for a partitioned table co-located with the build
// partitions.
type Spec struct {
	Build *colstore.Column
	Probe *colstore.Column
	// HTSockets lists the sockets holding hash-table partitions. When empty,
	// the table is placed on the build column's majority socket.
	HTSockets []int
	Strategy  core.Strategy
	// HitsPerProbeRow is the analytic join cardinality per probe row.
	HitsPerProbeRow float64
	// HomeSocket of the issuing client.
	HomeSocket int
	OnDone     func(latency float64)

	// Cost knobs (zero values take defaults).
	BuildCyclesPerRow float64
	ProbeCyclesPerRow float64
	HTMissRate        float64
}

// op builds the exec join operator for the spec (empty HTSockets defaults
// inside the operator, at build open).
func (s Spec) op(e *core.Engine) *exec.JoinOp {
	return &exec.JoinOp{
		Build:             s.Build,
		Probe:             s.Probe,
		HTSockets:         s.HTSockets,
		HitsPerProbeRow:   s.HitsPerProbeRow,
		Alloc:             e.Placer.Alloc,
		BuildCyclesPerRow: s.BuildCyclesPerRow,
		ProbeCyclesPerRow: s.ProbeCyclesPerRow,
		HTMissRate:        s.HTMissRate,
	}
}

// Execute runs the join on the engine's simulated machine as a two-phase
// operator pipeline: a parallel build phase (tasks bound to the build data's
// sockets, writing the hash table), a barrier, then a parallel probe phase
// (tasks bound to the probe data's sockets, randomly accessing the hash
// table wherever it was placed). Like its predecessor, it bypasses the
// statement entry point: no per-query overhead and no concurrency-hint
// accounting.
func Execute(e *core.Engine, spec Spec) {
	if spec.Build.IVPSM == nil || spec.Probe.IVPSM == nil {
		panic("join: columns must be placed before execution")
	}
	j := spec.op(e)
	p := &exec.Pipeline{
		Env:        e.ExecEnv(),
		Strategy:   spec.Strategy,
		HomeSocket: spec.HomeSocket,
		IssuedAt:   e.Sim.Now(),
		Ops:        []exec.Operator{j.BuildOp(), j.ProbeOp()},
		OnDone:     spec.OnDone,
	}
	p.Start()
}

// StarSpec describes a composed scan -> join -> aggregate statement over a
// star schema: a range predicate filters the dimension, the surviving
// dimension keys build the join hash table, the fact foreign-key column
// probes it, and the matching fact rows' measures are aggregated — all four
// phases scheduled as one statement with PSM-derived task affinities.
type StarSpec struct {
	// Dim is the dimension table; DimPredicate is its scanned predicate
	// column, DimKey the join-key column inserted into the hash table.
	Dim          *colstore.Table
	DimPredicate string
	DimKey       string
	// Fact is the fact table; FactFK is its foreign-key (probe) column.
	Fact   *colstore.Table
	FactFK string

	// Selectivity of the dimension predicate.
	Selectivity float64
	// HitsPerProbeRow is the join cardinality per fact row against the
	// unfiltered dimension (the predicate scales it down).
	HitsPerProbeRow float64
	// AggBytesPerRow / AggCyclesPerRow cost the measure aggregation per
	// matching fact row.
	AggBytesPerRow  float64
	AggCyclesPerRow float64

	// HTSockets places the hash table (defaults to the dimension key's
	// majority socket).
	HTSockets []int
	Strategy  core.Strategy
	// HomeSocket of the issuing client.
	HomeSocket int
	OnDone     func(latency float64)
}

// Plan builds the star statement's logical plan — the planner's input for
// ExecuteStar and for EXPLAIN renderings of the star workload.
func (s StarSpec) Plan() *plan.Logical {
	return plan.BuildStar(plan.StarStatement{
		Fact: s.Fact,
		Dims: []plan.StarDim{{
			Dim:             s.Dim,
			Predicate:       s.DimPredicate,
			Key:             s.DimKey,
			FactFK:          s.FactFK,
			Selectivity:     s.Selectivity,
			HitsPerProbeRow: s.HitsPerProbeRow,
		}},
		AggBytesPerRow:  s.AggBytesPerRow,
		AggCyclesPerRow: s.AggCyclesPerRow,
		HTSockets:       s.HTSockets,
	})
}

// checkStar validates the spec's column references and placement; both
// execution paths share it so planned and unplanned submission panic alike.
func checkStar(s StarSpec) {
	dimPred := s.Dim.Column(s.DimPredicate)
	dimKey := s.Dim.Column(s.DimKey)
	factFK := s.Fact.Column(s.FactFK)
	if dimPred == nil || dimKey == nil || factFK == nil {
		panic("join: star spec names unknown columns")
	}
	if dimPred.IVPSM == nil || dimKey.IVPSM == nil || factFK.IVPSM == nil {
		panic("join: columns must be placed before execution")
	}
}

// ExecuteStar submits the composed star-join statement through the planner:
// the spec builds a logical plan, the optimizer runs with statistics
// collected from the live tables, and the lowered four-operator pipeline
// (dimension scan, join build, join probe, measure aggregation) runs through
// the statement entry point — per-query overhead, concurrency-hint
// accounting, statement-timestamp priorities. On this single-dimension shape
// the lowering is field-for-field identical to ExecuteStarUnplanned's hand
// wiring, which the harness pins counter-identical on a fixed-seed scenario.
func ExecuteStar(e *core.Engine, s StarSpec) {
	checkStar(s)
	stats := plan.Collect(s.Dim, s.Fact)
	low := plan.Optimize(s.Plan(), stats, &e.Costs).Lower(plan.Deps{Alloc: e.Placer.Alloc})
	e.SubmitPipeline(s.Strategy, s.HomeSocket, s.OnDone, low.Ops...)
}

// ExecuteStarUnplanned submits the star statement with the pre-planner hand
// wiring — the reference composition ExecuteStar's lowering contract is
// measured against. Kept executable so the golden test compares live paths,
// not a snapshot.
func ExecuteStarUnplanned(e *core.Engine, s StarSpec) {
	checkStar(s)
	scan := &exec.ScanOp{
		Table:       s.Dim,
		Column:      s.DimPredicate,
		Selectivity: s.Selectivity,
		Parallel:    true,
	}
	j := &exec.JoinOp{
		Build:           s.Dim.Column(s.DimKey),
		Probe:           s.Fact.Column(s.FactFK),
		HTSockets:       s.HTSockets,
		HitsPerProbeRow: s.HitsPerProbeRow,
		Alloc:           e.Placer.Alloc,
		BuildSource:     scan,
	}
	agg := &exec.AggregateOp{
		Source:       j,
		BytesPerRow:  s.AggBytesPerRow,
		CyclesPerRow: s.AggCyclesPerRow,
		Parallel:     true,
	}
	e.SubmitPipeline(s.Strategy, s.HomeSocket, s.OnDone, scan, j.BuildOp(), j.ProbeOp(), agg)
}

// String renders a spec for logs.
func (s Spec) String() string {
	return fmt.Sprintf("join(%s ⋈ %s, HT on %v, %s)", s.Build.Name, s.Probe.Name, s.HTSockets, s.Strategy)
}
