// Package join implements the Section 8 extension the paper announces as
// ongoing work ("we are working on extending our analysis and our envisioned
// design to incorporate more complex operators, such as joins ... what we
// need to consider additionally is the placement of the data structures used
// internally in the operator, and placing correlated data on the same socket
// or on nearby sockets").
//
// The package provides both layers in the same style as the rest of the
// repository: a real, tested hash-join over dictionary-encoded columns, and
// a NUMA-aware simulated execution whose build and probe tasks carry socket
// affinities derived from the data placement — including the placement of
// the operator-internal hash table.
package join

import (
	"fmt"

	"numacs/internal/colstore"
	"numacs/internal/core"
	"numacs/internal/memsim"
	"numacs/internal/sched"
	"numacs/internal/sim"
)

// ---- functional hash join ---------------------------------------------------

// HashTable is an open-addressing hash table from join-key values to build-
// side row ids (multi-map: repeated keys chain through the overflow list).
type HashTable struct {
	mask    uint64
	keys    []int64
	rows    []uint32
	used    []bool
	next    []int32 // overflow chain per slot, -1 terminated
	entries int
}

// BuildHashTable hashes every row of the build column.
func BuildHashTable(build *colstore.Column) *HashTable {
	size := 1
	for size < build.Rows*2 {
		size *= 2
	}
	ht := &HashTable{
		mask: uint64(size - 1),
		keys: make([]int64, size),
		rows: make([]uint32, size),
		used: make([]bool, size),
		next: make([]int32, size),
	}
	for i := range ht.next {
		ht.next[i] = -1
	}
	for i := 0; i < build.Rows; i++ {
		ht.insert(build.Value(i), uint32(i))
	}
	return ht
}

func hash64(k int64) uint64 {
	x := uint64(k)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

func (ht *HashTable) insert(key int64, row uint32) {
	slot := hash64(key) & ht.mask
	for ht.used[slot] {
		slot = (slot + 1) & ht.mask
	}
	ht.keys[slot] = key
	ht.rows[slot] = row
	ht.used[slot] = true
	ht.entries++
}

// Entries returns the number of build rows stored.
func (ht *HashTable) Entries() int { return ht.entries }

// SizeBytes returns the table's memory footprint.
func (ht *HashTable) SizeBytes() int64 {
	return int64(len(ht.keys))*(8+4+4) + int64(len(ht.used))
}

// ProbeValue appends the build rows whose key equals v.
func (ht *HashTable) ProbeValue(v int64, out []uint32) []uint32 {
	slot := hash64(v) & ht.mask
	for ht.used[slot] {
		if ht.keys[slot] == v {
			out = append(out, ht.rows[slot])
		}
		slot = (slot + 1) & ht.mask
	}
	return out
}

// Pair is one join match.
type Pair struct {
	BuildRow uint32
	ProbeRow uint32
}

// HashJoin joins two columns on value equality and returns all matching
// (build row, probe row) pairs in probe order.
func HashJoin(build, probe *colstore.Column) []Pair {
	ht := BuildHashTable(build)
	var out []Pair
	var hits []uint32
	for i := 0; i < probe.Rows; i++ {
		hits = ht.ProbeValue(probe.Value(i), hits[:0])
		for _, b := range hits {
			out = append(out, Pair{BuildRow: b, ProbeRow: uint32(i)})
		}
	}
	return out
}

// ---- NUMA-aware simulated execution ------------------------------------------

// Spec describes one simulated join execution. Both columns must be placed
// (PSMs populated). The hash table — the operator-internal structure the
// paper highlights — is placed per HTSockets: one socket for a centralized
// table, several for a partitioned table co-located with the build
// partitions.
type Spec struct {
	Build *colstore.Column
	Probe *colstore.Column
	// HTSockets lists the sockets holding hash-table partitions. When empty,
	// the table is placed on the build column's majority socket.
	HTSockets []int
	Strategy  core.Strategy
	// HitsPerProbeRow is the analytic join cardinality per probe row.
	HitsPerProbeRow float64
	// HomeSocket of the issuing client.
	HomeSocket int
	OnDone     func(latency float64)

	// Cost knobs (zero values take defaults).
	BuildCyclesPerRow float64
	ProbeCyclesPerRow float64
	HTMissRate        float64
}

// Defaults.
const (
	defaultBuildCycles = 25
	defaultProbeCycles = 18
	defaultHTMissRate  = 0.5 // hash tables are bigger and colder than dictionaries
)

// run tracks one executing join.
type run struct {
	e       *core.Engine
	spec    Spec
	issued  float64
	htRange memsim.Range
	pending int
}

// Execute runs the join on the engine's simulated machine: a parallel build
// phase (tasks bound to the build data's sockets, writing the hash table),
// a barrier, then a parallel probe phase (tasks bound to the probe data's
// sockets, randomly accessing the hash table wherever it was placed).
func Execute(e *core.Engine, spec Spec) {
	if spec.Build.IVPSM == nil || spec.Probe.IVPSM == nil {
		panic("join: columns must be placed before execution")
	}
	if len(spec.HTSockets) == 0 {
		spec.HTSockets = []int{spec.Build.IVPSM.MajoritySocket()}
	}
	if spec.BuildCyclesPerRow == 0 {
		spec.BuildCyclesPerRow = defaultBuildCycles
	}
	if spec.ProbeCyclesPerRow == 0 {
		spec.ProbeCyclesPerRow = defaultProbeCycles
	}
	if spec.HTMissRate == 0 {
		spec.HTMissRate = defaultHTMissRate
	}
	r := &run{e: e, spec: spec, issued: e.Sim.Now()}
	// Allocate the hash table across its sockets (open addressing at 2x the
	// build rows, 16 bytes per slot).
	htBytes := int64(spec.Build.Rows) * 2 * 16
	if len(spec.HTSockets) == 1 {
		r.htRange = e.Placer.Alloc.Alloc(htBytes, memsim.OnSocket(spec.HTSockets[0]))
	} else {
		r.htRange = e.Placer.Alloc.Alloc(htBytes, memsim.Interleaved{Sockets: spec.HTSockets})
	}
	r.phase(spec.Build, spec.BuildCyclesPerRow, 1.0, r.probePhase)
}

// htWeights returns the access distribution over the hash-table sockets.
func (r *run) htWeights() []float64 {
	w := make([]float64, r.e.Machine.Sockets)
	for _, s := range r.spec.HTSockets {
		w[s] += 1 / float64(len(r.spec.HTSockets))
	}
	return w
}

// phase fans one join phase out over the column's IVP partitions: each task
// streams its share of the column and performs one hash-table access per
// row (insert during build, probe afterwards).
func (r *run) phase(col *colstore.Column, cyclesPerRow, accessesPerRow float64, onBarrier func()) {
	e := r.e
	nparts := col.NumPartitions()
	hint := e.ConcurrencyHint()
	perPartition := (hint + nparts - 1) / nparts
	type task struct {
		from, to, socket int
	}
	var tasks []task
	for pi := 0; pi < nparts; pi++ {
		pf, pt := col.PartitionBounds(pi)
		sock := partitionSocket(col, pf, pt)
		n := perPartition
		if n > pt-pf {
			n = pt - pf
		}
		for ti := 0; ti < n; ti++ {
			f := pf + (pt-pf)*ti/n
			t := pf + (pt-pf)*(ti+1)/n
			tasks = append(tasks, task{f, t, sock})
		}
	}
	r.pending = len(tasks)
	weights := r.htWeights()
	for _, tk := range tasks {
		tk := tk
		affinity, hard := affinityFor(r.spec.Strategy, tk.socket)
		e.Sched.Submit(&sched.Task{
			Priority: r.issued, Affinity: affinity, Hard: hard, CallerSocket: r.spec.HomeSocket,
			Run: func(w *sched.Worker, done func()) {
				r.runTask(w, col, tk.from, tk.to, cyclesPerRow, accessesPerRow, weights,
					func() {
						done()
						r.pending--
						if r.pending == 0 {
							onBarrier()
						}
					})
			},
		})
	}
}

// runTask streams the rows' IV bytes, then performs the hash-table random
// accesses.
func (r *run) runTask(w *sched.Worker, col *colstore.Column, from, to int,
	cyclesPerRow, accessesPerRow float64, htWeights []float64, onDone func()) {

	e := r.e
	src := w.Socket()
	offFrom := col.IVOffsetForRow(from)
	bytes := col.IVBytesForRows(from, to)
	if offFrom+bytes > col.IVRange.Bytes {
		bytes = col.IVRange.Bytes - offFrom
	}
	perSocket := col.IVPSM.SocketBytes(col.IVRange, offFrom, bytes)
	penalty := 1.0
	if !w.Bound {
		penalty = e.Costs.UnboundStreamPenalty
	}

	// Phase A: stream the column slice.
	var phases []*sim.Flow
	for dst, b := range perSocket {
		if b == 0 {
			continue
		}
		dst := dst
		demands, lt := e.HW.StreamDemands(src, dst, w.CoreRes, 0.3)
		phases = append(phases, &sim.Flow{
			Remaining: float64(b),
			RateCap:   e.Machine.StreamRate(src, dst) * penalty,
			Demands:   demands,
			OnAdvance: func(p float64) {
				e.Counters.AddMemoryTraffic(src, dst, p, p*lt.Data, p*lt.Total)
			},
		})
	}
	// Phase B: hash-table accesses.
	accesses := float64(to-from) * accessesPerRow
	demands, rateCap, _ := e.HW.RandomDemands(src, htWeights, w.CoreRes,
		cyclesPerRow, 0, r.spec.HTMissRate)
	if !w.Bound {
		rateCap *= e.Costs.UnboundStreamPenalty
	}
	miss := r.spec.HTMissRate
	htFlow := &sim.Flow{
		Remaining: accesses,
		RateCap:   rateCap,
		Demands:   demands,
		OnAdvance: func(p float64) {
			b := p * 64 * miss
			for dst, frac := range htWeights {
				if frac > 0 {
					e.Counters.AddMemoryTraffic(src, dst, b*frac, 0, 0)
				}
			}
			e.Counters.AddCompute(src, p*cyclesPerRow, 0)
		},
	}
	phases = append(phases, htFlow)
	for i := 0; i < len(phases)-1; i++ {
		next := phases[i+1]
		phases[i].OnDone = func() { e.Sim.StartFlow(next) }
	}
	phases[len(phases)-1].OnDone = onDone
	e.Sim.StartFlow(phases[0])
}

// probePhase runs after the build barrier.
func (r *run) probePhase() {
	r.phase(r.spec.Probe, r.spec.ProbeCyclesPerRow, maxf(r.spec.HitsPerProbeRow, 1), r.complete)
}

func (r *run) complete() {
	e := r.e
	e.Placer.Alloc.Free(r.htRange)
	lat := e.Sim.Now() - r.issued
	e.Counters.AddLatency(lat)
	if r.spec.OnDone != nil {
		r.spec.OnDone(lat)
	}
}

// partitionSocket resolves the majority socket of a row range.
func partitionSocket(col *colstore.Column, from, to int) int {
	offFrom := col.IVOffsetForRow(from)
	bytes := col.IVBytesForRows(from, to)
	if offFrom+bytes > col.IVRange.Bytes {
		bytes = col.IVRange.Bytes - offFrom
	}
	per := col.IVPSM.SocketBytes(col.IVRange, offFrom, bytes)
	best, bestB := -1, int64(0)
	for s, b := range per {
		if b > bestB {
			best, bestB = s, b
		}
	}
	return best
}

func affinityFor(strategy core.Strategy, socket int) (int, bool) {
	if socket < 0 {
		return -1, false
	}
	switch strategy {
	case core.OSched:
		return -1, false
	case core.Target:
		return socket, false
	default:
		return socket, true
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// String renders a spec for logs.
func (s Spec) String() string {
	return fmt.Sprintf("join(%s ⋈ %s, HT on %v, %s)", s.Build.Name, s.Probe.Name, s.HTSockets, s.Strategy)
}
