package join

import (
	"testing"
	"testing/quick"

	"numacs/internal/colstore"
	"numacs/internal/core"
	"numacs/internal/topology"
)

func col(name string, vals []int64) *colstore.Column { return colstore.Build(name, vals, false) }

func TestHashJoinSmall(t *testing.T) {
	build := col("dim", []int64{10, 20, 30})
	probe := col("fact", []int64{20, 10, 20, 99})
	pairs := HashJoin(build, probe)
	want := []Pair{{1, 0}, {0, 1}, {1, 2}}
	if len(pairs) != len(want) {
		t.Fatalf("pairs = %v, want %v", pairs, want)
	}
	for i := range want {
		if pairs[i] != want[i] {
			t.Fatalf("pairs = %v, want %v", pairs, want)
		}
	}
}

func TestHashJoinDuplicateBuildKeys(t *testing.T) {
	build := col("dim", []int64{7, 7, 8})
	probe := col("fact", []int64{7})
	pairs := HashJoin(build, probe)
	if len(pairs) != 2 {
		t.Fatalf("dup keys: %v", pairs)
	}
	seen := map[uint32]bool{}
	for _, p := range pairs {
		if build.Value(int(p.BuildRow)) != 7 || p.ProbeRow != 0 {
			t.Fatalf("bad pair %v", p)
		}
		seen[p.BuildRow] = true
	}
	if len(seen) != 2 {
		t.Fatal("missing one duplicate build row")
	}
}

func TestHashTableProbeAbsent(t *testing.T) {
	ht := BuildHashTable(col("d", []int64{1, 2, 3}))
	if got := ht.ProbeValue(42, nil); len(got) != 0 {
		t.Fatalf("absent key matched: %v", got)
	}
	if ht.Entries() != 3 {
		t.Fatalf("entries = %d", ht.Entries())
	}
	if ht.SizeBytes() <= 0 {
		t.Fatal("size not accounted")
	}
}

// Property: hash join equals nested-loop join on random data.
func TestHashJoinMatchesNestedLoopProperty(t *testing.T) {
	f := func(seed uint32) bool {
		s := seed
		next := func(mod int64) int64 {
			s = s*1664525 + 1013904223
			return int64(s) % mod
		}
		bvals := make([]int64, 40+int(seed%40))
		for i := range bvals {
			bvals[i] = next(30)
		}
		pvals := make([]int64, 60+int(seed%30))
		for i := range pvals {
			pvals[i] = next(40)
		}
		build, probe := col("b", bvals), col("p", pvals)
		got := HashJoin(build, probe)
		var want []Pair
		for pi, pv := range pvals {
			for bi, bv := range bvals {
				if bv == pv {
					want = append(want, Pair{uint32(bi), uint32(pi)})
				}
			}
		}
		if len(got) != len(want) {
			return false
		}
		// Same multiset, probe-major order; within a probe row the order of
		// build rows may differ (hash order), so compare per probe row.
		byProbe := func(ps []Pair) map[uint32]map[uint32]int {
			m := map[uint32]map[uint32]int{}
			for _, p := range ps {
				if m[p.ProbeRow] == nil {
					m[p.ProbeRow] = map[uint32]int{}
				}
				m[p.ProbeRow][p.BuildRow]++
			}
			return m
		}
		g, w := byProbe(got), byProbe(want)
		if len(g) != len(w) {
			return false
		}
		for pr, rows := range w {
			if len(g[pr]) != len(rows) {
				return false
			}
			for br, n := range rows {
				if g[pr][br] != n {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// ---- simulated execution ------------------------------------------------------

func placedColumns(e *core.Engine, rows int) (build, probe *colstore.Column) {
	bvals := make([]int64, rows/4)
	pvals := make([]int64, rows)
	s := uint32(5)
	for i := range bvals {
		s = s*1664525 + 1013904223
		bvals[i] = int64(s % 10000)
	}
	for i := range pvals {
		s = s*1664525 + 1013904223
		pvals[i] = int64(s % 10000)
	}
	build = colstore.Build("DIM", bvals, false)
	probe = colstore.Build("FACT", pvals, false)
	e.Placer.PlaceIVP(build, []int{0, 1, 2, 3})
	e.Placer.PlaceIVP(probe, []int{0, 1, 2, 3})
	return build, probe
}

func TestSimulatedJoinCompletes(t *testing.T) {
	e := core.New(topology.FourSocketIvyBridge(), 1)
	build, probe := placedColumns(e, 80000)
	resident := func() int64 {
		total := int64(0)
		for s := 0; s < 4; s++ {
			total += e.Placer.Alloc.BytesOnSocket(s)
		}
		return total
	}
	before := resident()
	done := false
	Execute(e, Spec{
		Build: build, Probe: probe, Strategy: core.Bound,
		HitsPerProbeRow: 1, OnDone: func(float64) { done = true },
	})
	if resident() <= before {
		t.Fatal("hash table not allocated")
	}
	e.Sim.Run(0.3)
	if !done {
		t.Fatal("join did not complete")
	}
	if e.Counters.TotalMCBytes() <= 0 {
		t.Fatal("no traffic")
	}
	// Hash-table memory was freed after completion.
	if got := resident(); got != before {
		t.Fatalf("hash-table memory leaked: %d before, %d after", before, got)
	}
}

// The Section 8 design point: a partitioned hash table co-located with the
// build partitions beats a centralized table on one socket.
func TestPartitionedHashTableBeatsCentralized(t *testing.T) {
	run := func(htSockets []int) float64 {
		e := core.New(topology.FourSocketIvyBridge(), 1)
		build, probe := placedColumns(e, 120000)
		completed := 0
		var issue func()
		inflight := 0
		issue = func() {
			if inflight >= 32 {
				return
			}
			inflight++
			Execute(e, Spec{
				Build: build, Probe: probe, Strategy: core.Bound,
				HTSockets: htSockets, HitsPerProbeRow: 1,
				OnDone: func(float64) { completed++; inflight--; issue() },
			})
		}
		for i := 0; i < 32; i++ {
			issue()
		}
		e.Sim.Run(0.3)
		return float64(completed)
	}
	central := run([]int{0})
	partitioned := run([]int{0, 1, 2, 3})
	if partitioned <= central {
		t.Fatalf("partitioned HT (%v joins) should beat centralized (%v)", partitioned, central)
	}
}

func TestJoinStrategyAffinities(t *testing.T) {
	e := core.New(topology.FourSocketIvyBridge(), 1)
	build, probe := placedColumns(e, 60000)
	done := false
	Execute(e, Spec{
		Build: build, Probe: probe, Strategy: core.Bound,
		HTSockets:       []int{0, 1, 2, 3},
		HitsPerProbeRow: 1,
		OnDone:          func(float64) { done = true },
	})
	e.Sim.Run(0.3)
	if !done {
		t.Fatal("join did not complete")
	}
	if e.Counters.TasksStolen != 0 {
		t.Fatalf("Bound join stole %d tasks", e.Counters.TasksStolen)
	}
	// Build+probe scans run on all four sockets.
	for s := 0; s < 4; s++ {
		if e.Counters.MCBytes[s] == 0 {
			t.Fatalf("socket %d idle during join", s)
		}
	}
}

func TestSpecString(t *testing.T) {
	b, p := col("A", []int64{1}), col("B", []int64{1})
	s := Spec{Build: b, Probe: p, HTSockets: []int{0}, Strategy: core.Bound}
	if s.String() == "" {
		t.Fatal("empty description")
	}
}
