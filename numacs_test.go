package numacs_test

import (
	"testing"

	"numacs"
)

// TestPublicAPIEndToEnd exercises the documented quickstart flow through the
// facade only.
func TestPublicAPIEndToEnd(t *testing.T) {
	machine := numacs.FourSocketIvyBridge()
	engine := numacs.NewEngine(machine, 1)
	table := numacs.GenerateDataset(numacs.DatasetConfig{
		Rows: 50_000, Columns: 8, BitcaseMin: 12, BitcaseMax: 16, Seed: 1, Synthetic: true,
	})
	engine.Placer.PlaceRR(table)
	clients := numacs.NewClients(engine, table, numacs.ClientsConfig{
		N: 32, Selectivity: 0.0001, Parallel: true, Strategy: numacs.Bound, Seed: 2,
	})
	clients.Start()
	engine.Sim.Run(0.1)
	if engine.Counters.QueriesDone == 0 {
		t.Fatal("no queries completed via the public API")
	}
	if engine.Counters.ThroughputQPM(0.1) <= 0 {
		t.Fatal("throughput not positive")
	}
}

func TestPublicColumnStore(t *testing.T) {
	col := numacs.BuildColumn("x", []int64{5, 1, 5, 3, 1}, true)
	lo, hi, ok := col.EncodePredicate(1, 3)
	if !ok {
		t.Fatal("predicate should qualify")
	}
	pos := col.ScanPositions(lo, hi, 0, col.Rows, nil)
	if len(pos) != 3 {
		t.Fatalf("matches = %d, want 3 (values 1,3,1)", len(pos))
	}
	idx := col.IndexLookupPositions(lo, hi, nil)
	if len(idx) != 3 {
		t.Fatalf("index matches = %d", len(idx))
	}
	tbl := numacs.NewTable("t", []*numacs.Column{col})
	if tbl.Rows != 5 {
		t.Fatalf("table rows = %d", tbl.Rows)
	}
}

func TestPublicPSM(t *testing.T) {
	machine := numacs.FourSocketIvyBridge()
	engine := numacs.NewEngine(machine, 1)
	alloc := engine.Placer.Alloc
	r := alloc.Alloc(8*numacs.PageSize, numacs.OnSocket(2))
	p := numacs.BuildPSM(alloc, r)
	if p.MajoritySocket() != 2 {
		t.Fatalf("majority socket = %d", p.MajoritySocket())
	}
	alloc.MovePages(r.Subrange(0, 4*numacs.PageSize), 1)
	q := numacs.BuildPSM(alloc, r)
	if got := q.Summary(); got[1] != 4 || got[2] != 4 {
		t.Fatalf("summary after move = %v", got)
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	exps := numacs.Experiments()
	if len(exps) < 18 {
		t.Fatalf("experiments = %d, want >= 18 (every paper table and figure)", len(exps))
	}
	if _, ok := numacs.ExperimentByID("fig8"); !ok {
		t.Fatal("fig8 missing")
	}
	if _, ok := numacs.ExperimentByID("nope"); ok {
		t.Fatal("bogus id resolved")
	}
	if numacs.QuickScale().Rows >= numacs.FullScale().Rows {
		t.Fatal("quick scale should be smaller than full")
	}
}

func TestPublicAdaptivePlacer(t *testing.T) {
	machine := numacs.FourSocketIvyBridge()
	engine := numacs.NewEngine(machine, 1)
	table := numacs.GenerateDataset(numacs.DatasetConfig{
		Rows: 40_000, Columns: 8, BitcaseMin: 12, BitcaseMax: 16, Seed: 1, Synthetic: true,
	})
	engine.Placer.PlaceRRBlocks(table)
	placer := numacs.NewAdaptivePlacer(engine, &numacs.Catalog{
		Tables: []*numacs.Table{table},
	}, numacs.DefaultAdaptiveConfig())
	engine.Sim.AddActor(placer)
	clients := numacs.NewClients(engine, table, numacs.ClientsConfig{
		N: 128, Selectivity: 0.0001, Parallel: true, Strategy: numacs.Bound,
		Chooser: numacs.SkewedChoice{HotProb: 0.8}, Seed: 2,
	})
	clients.Start()
	engine.Sim.Run(0.2)
	if len(placer.Actions) == 0 {
		t.Fatal("adaptive placer idle on a skewed workload")
	}
}

func TestPublicAggregates(t *testing.T) {
	machine := numacs.SixteenSocketIvyBridge()
	engine := numacs.NewEngineWithStep(machine, 1, 100e-6)
	table := numacs.Q1Table(50_000, 1)
	pp := engine.Placer.PlacePP(table, 4)
	clients := numacs.NewQ1Clients(engine, pp, 8, numacs.Target, 7)
	clients.Start()
	engine.Sim.Run(0.1)
	if engine.Counters.QueriesDone == 0 {
		t.Fatal("no Q1 queries completed")
	}

	cubes := numacs.BWEMLCubes(30_000, 1)
	if len(cubes) != 3 {
		t.Fatalf("cubes = %d", len(cubes))
	}
}

func TestPublicHashJoin(t *testing.T) {
	build := numacs.BuildColumn("dim", []int64{1, 2, 3}, false)
	probe := numacs.BuildColumn("fact", []int64{2, 2, 9}, false)
	pairs := numacs.HashJoin(build, probe)
	if len(pairs) != 2 {
		t.Fatalf("pairs = %v", pairs)
	}
	engine := numacs.NewEngine(numacs.FourSocketIvyBridge(), 1)
	engine.Placer.PlaceIVP(build, []int{0, 1})
	engine.Placer.PlaceIVP(probe, []int{2, 3})
	done := false
	numacs.ExecuteJoin(engine, numacs.JoinSpec{
		Build: build, Probe: probe, Strategy: numacs.Bound,
		HitsPerProbeRow: 1, OnDone: func(float64) { done = true },
	})
	engine.Sim.Run(0.05)
	if !done {
		t.Fatal("simulated join did not complete")
	}
}

func TestPublicRLEAndInList(t *testing.T) {
	col := numacs.BuildColumn("c", []int64{5, 5, 5, 7, 7, 9}, false)
	rle := numacs.BuildRLE(col.IVec)
	if rle.Runs() != 3 {
		t.Fatalf("runs = %d", rle.Runs())
	}
	set := col.EncodeInList([]int64{5, 9})
	got := col.ScanInListPositions(set, 0, col.Rows, nil)
	if len(got) != 4 {
		t.Fatalf("in-list matches = %d, want 4", len(got))
	}
}
