// Package numacs is a Go reproduction of "Scaling Up Concurrent Main-Memory
// Column-Store Scans: Towards Adaptive NUMA-aware Data and Task Placement"
// (Psaroudakis et al., VLDB 2015).
//
// The library provides:
//
//   - A main-memory column store with dictionary-encoded, bit-compressed
//     columns and optional inverted indexes (the functional kernels are
//     real and fully tested).
//   - A deterministic simulated NUMA machine — sockets, memory controllers,
//     QPI links, cache-coherence protocols — calibrated against the paper's
//     Table 1, standing in for hardware the Go runtime cannot pin threads
//     to.
//   - The paper's three data placements (RR, IVP, PP) over a simulated page
//     allocator with move_pages semantics, tracked by Page Socket Mappings.
//   - A NUMA-aware task scheduler with per-socket thread groups, hard
//     affinities, stealing, and the concurrency hint.
//   - The OS/Target/Bound scheduling strategies, closed-loop scan and
//     aggregation workloads, and the adaptive data placer of Section 7.
//   - A harness regenerating every table and figure of the paper's
//     evaluation (see cmd/scanbench and EXPERIMENTS.md).
//
// Quickstart:
//
//	machine := numacs.FourSocketIvyBridge()
//	engine := numacs.NewEngine(machine, 1)
//	table := numacs.GenerateDataset(numacs.DatasetConfig{
//	    Rows: 100_000, Columns: 16, BitcaseMin: 12, BitcaseMax: 21, Seed: 1,
//	})
//	engine.Placer.PlaceRR(table)
//	clients := numacs.NewClients(engine, table, numacs.ClientsConfig{
//	    N: 64, Selectivity: 0.0001, Parallel: true, Strategy: numacs.Bound,
//	})
//	clients.Start()
//	engine.Sim.Run(0.5) // half a second of virtual time
//	fmt.Println(engine.Counters.ThroughputQPM(0.5))
//
// See the examples directory for runnable programs.
package numacs

import (
	"numacs/internal/adaptive"
	"numacs/internal/admit"
	"numacs/internal/agg"
	"numacs/internal/colstore"
	"numacs/internal/core"
	"numacs/internal/delta"
	"numacs/internal/exec"
	"numacs/internal/harness"
	"numacs/internal/join"
	"numacs/internal/memsim"
	"numacs/internal/metrics"
	"numacs/internal/placement"
	"numacs/internal/psm"
	"numacs/internal/sched"
	"numacs/internal/sharedscan"
	"numacs/internal/sim"
	"numacs/internal/topology"
	"numacs/internal/workload"
)

// Machine topology -----------------------------------------------------------

// Machine describes a NUMA machine: sockets, cores, memory controllers,
// interconnect links, latencies, and the coherence protocol.
type Machine = topology.Machine

// Link is a directed interconnect link.
type Link = topology.Link

// Coherence selects the cache-coherence protocol.
type Coherence = topology.Coherence

// Coherence protocols.
const (
	Directory      = topology.Directory
	BroadcastSnoop = topology.BroadcastSnoop
)

// FourSocketIvyBridge returns the paper's main 4-socket machine (Table 1).
func FourSocketIvyBridge() *Machine { return topology.FourSocketIvyBridge() }

// EightSocketWestmere returns the 8-socket broadcast-snoop machine (Table 1).
func EightSocketWestmere() *Machine { return topology.EightSocketWestmere() }

// SixteenSocketIvyBridge returns half of the rack-scale machine (Section 6.3).
func SixteenSocketIvyBridge() *Machine { return topology.SixteenSocketIvyBridge() }

// ThirtyTwoSocketIvyBridge returns the SGI UV 300 rack-scale machine (Table 1).
func ThirtyTwoSocketIvyBridge() *Machine { return topology.ThirtyTwoSocketIvyBridge() }

// Column store ----------------------------------------------------------------

// Column is a dictionary-encoded column: sorted dictionary, bit-compressed
// indexvector, optional inverted index.
type Column = colstore.Column

// Table is a physically partitionable table of columns.
type Table = colstore.Table

// Part is one physical partition of a table.
type Part = colstore.Part

// Index is the optional inverted index of a column.
type Index = colstore.Index

// Delta is a column's write-side delta store: uncompressed per-socket
// fragments appends land in until a background merge folds them into the
// dictionary-encoded main.
type Delta = delta.Delta

// DeltaFragment is one per-socket fragment of a column's delta.
type DeltaFragment = delta.Fragment

// PackedVector is a bit-compressed integer vector.
type PackedVector = colstore.PackedVector

// RLEVector is a run-length-encoded vid vector (the Section 8 compression
// extension).
type RLEVector = colstore.RLEVector

// VidSet is a value-identifier set used for complex (IN-list) predicates.
type VidSet = colstore.VidSet

// BuildRLE run-length-encodes a packed vector.
func BuildRLE(iv *PackedVector) *RLEVector { return colstore.BuildRLE(iv) }

// BuildColumn dictionary-encodes values into a column.
func BuildColumn(name string, values []int64, withIndex bool) *Column {
	return colstore.Build(name, values, withIndex)
}

// NewTable builds a single-part table from whole columns.
func NewTable(name string, columns []*Column) *Table { return colstore.NewTable(name, columns) }

// Memory simulation ------------------------------------------------------------

// Allocator is the simulated physical page allocator (move_pages semantics).
type Allocator = memsim.Allocator

// MemRange is a simulated virtual address range.
type MemRange = memsim.Range

// PSM is the Page Socket Mapping of Section 4.3.
type PSM = psm.PSM

// PageSize is the simulated page size in bytes.
const PageSize = memsim.PageSize

// OnSocket is the allocation policy placing every page on one socket.
type OnSocket = memsim.OnSocket

// Interleaved is the allocation policy distributing pages round-robin.
type Interleaved = memsim.Interleaved

// BuildPSM summarizes the physical location of the given ranges.
func BuildPSM(alloc *Allocator, ranges ...MemRange) *PSM { return psm.Build(alloc, ranges...) }

// Placement ---------------------------------------------------------------------

// Placer applies the RR/IVP/PP data placements.
type Placer = placement.Placer

// Execution engine ----------------------------------------------------------------

// Engine executes queries on a simulated machine.
type Engine = core.Engine

// Query describes one range-predicate column selection (or aggregation).
type Query = core.Query

// Costs holds the calibrated cost-model constants.
type Costs = core.Costs

// Strategy is a task scheduling strategy.
type Strategy = core.Strategy

// Scheduling strategies (Section 6): OS leaves placement to the operating
// system; Target sets task affinities; Bound additionally prevents
// inter-socket stealing.
const (
	OS     = core.OSched
	Target = core.Target
	Bound  = core.Bound
)

// NewEngine creates an engine with all substrates wired up.
func NewEngine(m *Machine, seed int64) *Engine { return core.New(m, seed) }

// NewEngineWithStep creates an engine with an explicit simulator step.
func NewEngineWithStep(m *Machine, seed int64, step float64) *Engine {
	return core.NewWithStep(m, seed, step)
}

// DefaultCosts returns the calibrated cost-model defaults.
func DefaultCosts() Costs { return core.DefaultCosts() }

// Operator pipelines ----------------------------------------------------------------

// Pipeline sequences operators with barriers on the simulated machine; every
// statement (scan, aggregation, join, or a composition) executes as one.
type Pipeline = exec.Pipeline

// Operator produces the tasks of one pipeline phase.
type Operator = exec.Operator

// ExecEnv bundles what operators need from an engine; obtain one via
// Engine.ExecEnv.
type ExecEnv = exec.Env

// ScanOp is the find phase of Section 5.2 as a composable operator.
type ScanOp = exec.ScanOp

// MaterializeOp is the output-materialization phase as a composable operator.
type MaterializeOp = exec.MaterializeOp

// AggOp aggregates the qualifying regions of a ScanOp or JoinOp.
type AggOp = exec.AggregateOp

// JoinOp is the hash-join operator; it contributes the BuildOp and ProbeOp
// pipeline phases and feeds its probe-side match regions downstream.
type JoinOp = exec.JoinOp

// Region is a per-partition qualifying-match count with its data socket.
type Region = exec.Region

// RegionSource is an operator yielding qualifying regions (ScanOp, JoinOp).
type RegionSource = exec.RegionSource

// AffinityFor derives a task affinity from a scheduling strategy and a
// natural data socket — the single source of that rule for every operator.
func AffinityFor(s Strategy, socket int) (affinity int, hard bool) {
	return exec.AffinityFor(s, socket)
}

// Scheduler & metrics ---------------------------------------------------------------

// Task is a schedulable unit of work.
type Task = sched.Task

// Worker is a scheduler worker thread.
type Worker = sched.Worker

// Counters accumulates the performance metrics the paper reports.
type Counters = metrics.Counters

// LatencyStats summarizes a latency distribution.
type LatencyStats = metrics.LatencyStats

// Flow is a unit of in-flight simulated work.
type Flow = sim.Flow

// Workloads -------------------------------------------------------------------------

// DatasetConfig describes the synthetic dataset generator.
type DatasetConfig = workload.DatasetConfig

// ClientsConfig configures a closed-loop client population.
type ClientsConfig = workload.ClientsConfig

// Clients drives closed-loop scan clients.
type Clients = workload.Clients

// Chooser picks the column a client queries.
type Chooser = workload.Chooser

// UniformChoice picks query columns uniformly.
type UniformChoice = workload.UniformChoice

// SkewedChoice picks query columns with the paper's 80/20 skew.
type SkewedChoice = workload.SkewedChoice

// HotColumnChoice concentrates queries on a single read-hot column.
type HotColumnChoice = workload.HotColumnChoice

// GenerateDataset builds the synthetic table.
func GenerateDataset(cfg DatasetConfig) *Table { return workload.Generate(cfg) }

// NewClients creates a closed-loop client population over a placed table.
func NewClients(e *Engine, t *Table, cfg ClientsConfig) *Clients {
	return workload.NewClients(e, t, cfg)
}

// WritersConfig is the workload's write-mix knob: inserts/updates per
// virtual second against chosen columns.
type WritersConfig = workload.WritersConfig

// Writers drives the write mix against per-socket delta fragments; register
// it with engine.Sim.AddActor.
type Writers = workload.Writers

// NewWriters creates the writer population over a placed single-part table.
func NewWriters(e *Engine, t *Table, cfg WritersConfig) *Writers {
	return workload.NewWriters(e, t, cfg)
}

// MultiTenantConfig configures the multi-tenant statement generator:
// open-loop arrival rates with bursts, closed-loop clients with think
// times, per tenant.
type MultiTenantConfig = workload.MultiTenantConfig

// TenantLoad describes one tenant of the multi-tenant generator.
type TenantLoad = workload.TenantLoad

// MultiTenant drives the multi-tenant mix; register it with
// engine.Sim.AddActor and call Start.
type MultiTenant = workload.MultiTenant

// NewMultiTenant creates the multi-tenant generator over a placed table.
func NewMultiTenant(e *Engine, t *Table, cfg MultiTenantConfig) *MultiTenant {
	return workload.NewMultiTenant(e, t, cfg)
}

// Admission control (front-end QoS layer) -----------------------------------------------

// AdmitConfig tunes the statement-admission controller: tenant weights,
// elastic concurrency bounds, saturation watermarks, per-class shedding
// deadlines.
type AdmitConfig = admit.Config

// AdmitController is the admission front end; enable it with
// Engine.EnableAdmission and tag queries with Query.Tenant.
type AdmitController = admit.Controller

// AdmitTenantSpec registers one tenant's fair-share weight.
type AdmitTenantSpec = admit.TenantSpec

// Shared scan cohorts ---------------------------------------------------------------------

// SharedScanConfig tunes the scan-cohort registry: join window, mid-flight
// attach bound, cohort size cap.
type SharedScanConfig = sharedscan.Config

// SharedScanRegistry is the cohort layer merging concurrent same-column
// scans into one physical pass; enable it with Engine.EnableSharedScans.
type SharedScanRegistry = sharedscan.Registry

// SharedScanStats counts cohort outcomes (passes, merged members,
// mid-flight attaches, wrap passes, join-window sheds).
type SharedScanStats = sharedscan.Stats

// SharedScanOp is the cohort find phase: one pass, N member predicates.
type SharedScanOp = exec.SharedScanOp

// FixedColumnChoice makes every client scan the same column — the
// same-column hot-scan mix of the shared-scan experiment.
type FixedColumnChoice = workload.FixedColumnChoice

// AggClients drives TPC-H-Q1-style or BW-EML-style aggregation clients.
type AggClients = agg.Clients

// NewQ1Clients builds the TPC-H-Q1-style population (Section 6.3).
func NewQ1Clients(e *Engine, t *Table, n int, st Strategy, seed int64) *AggClients {
	return agg.NewQ1Clients(e, t, n, st, seed)
}

// NewBWEMLClients builds the BW-EML-style population (Section 6.3).
func NewBWEMLClients(e *Engine, cubes []*Table, n int, st Strategy, seed int64) *AggClients {
	return agg.NewBWEMLClients(e, cubes, n, st, seed)
}

// Q1Table builds the synthetic lineitem-like table.
func Q1Table(rows int, seed int64) *Table {
	return agg.Q1Table(agg.Q1Config{Rows: rows, Seed: seed})
}

// BWEMLCubes builds the InfoCube-like tables.
func BWEMLCubes(rowsPerCube int, seed int64) []*Table {
	return agg.BWEMLCubes(agg.BWEMLConfig{RowsPerCube: rowsPerCube, Seed: seed})
}

// Joins (Section 8 extension) -----------------------------------------------------------

// JoinSpec describes a simulated NUMA-aware hash join, including the
// placement of the operator-internal hash table.
type JoinSpec = join.Spec

// JoinPair is one hash-join match.
type JoinPair = join.Pair

// HashTable is the functional hash table of the join operator.
type HashTable = join.HashTable

// HashJoin joins two columns on value equality (functional, fully tested).
func HashJoin(build, probe *Column) []JoinPair { return join.HashJoin(build, probe) }

// ExecuteJoin runs a NUMA-aware join on the simulated machine: build tasks
// bound to the build data, probe tasks bound to the probe data, hash-table
// accesses wherever JoinSpec.HTSockets placed it.
func ExecuteJoin(e *Engine, spec JoinSpec) { join.Execute(e, spec) }

// StarJoinSpec describes a composed scan -> join -> aggregate statement over
// a star schema: a range predicate filters the dimension, the surviving keys
// build the hash table, the fact foreign-key column probes it, and the
// matching rows' measures are aggregated in one scheduled statement.
type StarJoinSpec = join.StarSpec

// ExecuteStarJoin submits the composed star-join statement as a
// four-operator pipeline through the statement entry point.
func ExecuteStarJoin(e *Engine, spec StarJoinSpec) { join.ExecuteStar(e, spec) }

// Adaptive design ----------------------------------------------------------------------

// AdaptivePlacer is the Section 7 data placer: it balances socket
// utilization by moving and repartitioning hot data.
type AdaptivePlacer = adaptive.Placer

// AdaptiveConfig tunes the adaptive placer.
type AdaptiveConfig = adaptive.Config

// Catalog lists the tables the adaptive placer manages.
type Catalog = adaptive.Catalog

// NewAdaptivePlacer creates a placer; register it with engine.Sim.AddActor.
func NewAdaptivePlacer(e *Engine, cat *Catalog, cfg AdaptiveConfig) *AdaptivePlacer {
	return adaptive.New(e, cat, cfg)
}

// DefaultAdaptiveConfig returns the placer defaults.
func DefaultAdaptiveConfig() AdaptiveConfig { return adaptive.DefaultConfig() }

// Experiments -----------------------------------------------------------------------------

// Experiment regenerates one table or figure of the paper.
type Experiment = harness.Experiment

// ExperimentScale sizes experiments (FullScale or QuickScale).
type ExperimentScale = harness.Scale

// ExperimentReport is the rendered outcome of an experiment.
type ExperimentReport = harness.Report

// Experiments returns every experiment in paper order.
func Experiments() []Experiment { return harness.All() }

// ExperimentByID finds an experiment (e.g. "fig8").
func ExperimentByID(id string) (Experiment, bool) { return harness.ByID(id) }

// FullScale returns the default experiment scale.
func FullScale() ExperimentScale { return harness.FullScale() }

// QuickScale returns a reduced scale for quick runs.
func QuickScale() ExperimentScale { return harness.QuickScale() }
