// Root benchmark harness: one testing.B benchmark per table and figure of
// the paper (regenerating the experiment and reporting its headline numbers
// as custom metrics), plus ablation benchmarks for the design choices called
// out in DESIGN.md.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Benchmarks run each experiment at a reduced "bench" scale so the full
// suite completes in minutes; cmd/scanbench regenerates the figures at full
// scale.
package numacs_test

import (
	"testing"

	"numacs"
	"numacs/internal/core"
	"numacs/internal/harness"
)

// benchScale balances fidelity against suite runtime.
func benchScale() harness.Scale {
	return harness.Scale{
		Name: "bench", Rows: 100_000, Rows32: 100_000,
		Warmup: 0.03, Measure: 0.1,
		Step: 10e-6, Step32: 100e-6,
		Clients: []int{64, 512}, Max: 512,
	}
}

// benchExperiment reruns one paper experiment per iteration and reports the
// throughput of its headline cell.
func benchExperiment(b *testing.B, id string) {
	exp, ok := harness.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	sc := benchScale()
	var rep *harness.Report
	for i := 0; i < b.N; i++ {
		rep = exp.Run(sc)
	}
	if rep != nil && len(rep.Results) > 0 {
		best := 0.0
		for _, r := range rep.Results {
			if r.QPM > best {
				best = r.QPM
			}
		}
		b.ReportMetric(best, "best-q/min")
	}
}

func BenchmarkTable1(b *testing.B)      { benchExperiment(b, "table1") }
func BenchmarkFig1(b *testing.B)        { benchExperiment(b, "fig1") }
func BenchmarkFig8(b *testing.B)        { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)        { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)       { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)       { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)       { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)       { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)       { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)       { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)       { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)       { benchExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B)       { benchExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B)       { benchExperiment(b, "fig19") }
func BenchmarkTable2(b *testing.B)      { benchExperiment(b, "table2") }
func BenchmarkPSMSize(b *testing.B)     { benchExperiment(b, "psmsize") }
func BenchmarkRepartition(b *testing.B) { benchExperiment(b, "repart") }
func BenchmarkAdaptive(b *testing.B)    { benchExperiment(b, "adaptive") }

// ---- ablation benchmarks ----------------------------------------------------

// benchCell runs one experiment cell per iteration and reports q/min.
func benchCell(b *testing.B, spec harness.Spec) {
	var r harness.Result
	for i := 0; i < b.N; i++ {
		r = harness.Run(spec)
	}
	b.ReportMetric(r.QPM, "q/min")
	b.ReportMetric(float64(r.Stolen), "stolen")
}

func skewedBoundSpec() harness.Spec {
	sc := benchScale()
	return harness.Spec{
		Machine:     harness.FourSocket,
		Placement:   harness.PlacementSpec{Kind: harness.RR},
		Strategy:    core.Bound,
		Clients:     sc.Max,
		Selectivity: 1e-5,
		Parallel:    true,
		Skew:        true,
		Warmup:      sc.Warmup, Measure: sc.Measure, Step: sc.Step,
	}
}

// BenchmarkAblationHardQueue quantifies the hard-affinity queue (the Section
// 5 claim): the same skewed memory-intensive workload under Bound (hard
// queues) vs Target (stealable affinities).
func BenchmarkAblationHardQueue(b *testing.B) {
	b.Run("bound", func(b *testing.B) { benchCell(b, skewedBoundSpec()) })
	b.Run("target", func(b *testing.B) {
		s := skewedBoundSpec()
		s.Strategy = core.Target
		benchCell(b, s)
	})
}

// BenchmarkAblationConcurrencyHint quantifies the task-granularity hint [28]
// at high concurrency.
func BenchmarkAblationConcurrencyHint(b *testing.B) {
	b.Run("hint", func(b *testing.B) {
		s := skewedBoundSpec()
		s.Skew = false
		benchCell(b, s)
	})
	b.Run("nohint", func(b *testing.B) {
		s := skewedBoundSpec()
		s.Skew = false
		s.DisableHint = true
		benchCell(b, s)
	})
}

// BenchmarkAblationPriority compares statement-timestamp priorities against
// FIFO queues; the paper's scheme tightens the latency distribution.
func BenchmarkAblationPriority(b *testing.B) {
	run := func(b *testing.B, fifo bool) {
		s := skewedBoundSpec()
		s.Skew = false
		s.Placement = harness.PlacementSpec{Kind: harness.IVP, Partitions: 4}
		s.FIFOPriority = fifo
		var r harness.Result
		for i := 0; i < b.N; i++ {
			r = harness.Run(s)
		}
		b.ReportMetric(r.QPM, "q/min")
		b.ReportMetric(r.Latency.CoeffOfVariation, "latency-cov")
	}
	b.Run("timestamp", func(b *testing.B) { run(b, false) })
	b.Run("fifo", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationCoalesce measures the output-region coalescing of the
// materialization preprocessing (Section 5.2).
func BenchmarkAblationCoalesce(b *testing.B) {
	run := func(b *testing.B, disable bool) {
		s := skewedBoundSpec()
		s.Skew = false
		s.Selectivity = 0.10 // materialization-dominated
		s.Placement = harness.PlacementSpec{Kind: harness.IVP, Partitions: 4}
		s.DisableCoalesce = disable
		benchCell(b, s)
	}
	b.Run("coalesce", func(b *testing.B) { run(b, false) })
	b.Run("nocoalesce", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationModel probes the sensitivity of the headline OS-vs-Bound
// ratio to the one deliberately calibrated constant, the unbound-worker
// streaming penalty.
func BenchmarkAblationModel(b *testing.B) {
	for _, penalty := range []float64{0.10, 0.15, 0.30, 1.0} {
		penalty := penalty
		b.Run(pname(penalty), func(b *testing.B) {
			costs := core.DefaultCosts()
			costs.UnboundStreamPenalty = penalty
			s := skewedBoundSpec()
			s.Skew = false
			s.Strategy = core.OSched
			s.Costs = &costs
			benchCell(b, s)
		})
	}
}

func pname(p float64) string {
	switch p {
	case 0.10:
		return "penalty0.10"
	case 0.15:
		return "penalty0.15-default"
	case 0.30:
		return "penalty0.30"
	default:
		return "penalty1.00-off"
	}
}

// BenchmarkAblationJoinHTPlacement probes the Section 8 join extension: a
// hash table partitioned across the build sockets vs centralized on one.
func BenchmarkAblationJoinHTPlacement(b *testing.B) {
	run := func(b *testing.B, htSockets []int) {
		var completed int
		for i := 0; i < b.N; i++ {
			e := numacs.NewEngineWithStep(numacs.FourSocketIvyBridge(), 1, 10e-6)
			build := numacs.BuildColumn("DIM", seq(30_000, 10_000), false)
			probe := numacs.BuildColumn("FACT", seq(120_000, 10_000), false)
			e.Placer.PlaceIVP(build, []int{0, 1, 2, 3})
			e.Placer.PlaceIVP(probe, []int{0, 1, 2, 3})
			completed = 0
			inflight := 0
			var issue func()
			issue = func() {
				if inflight >= 32 {
					return
				}
				inflight++
				numacs.ExecuteJoin(e, numacs.JoinSpec{
					Build: build, Probe: probe, Strategy: numacs.Bound,
					HTSockets: htSockets, HitsPerProbeRow: 1,
					OnDone: func(float64) { completed++; inflight--; issue() },
				})
			}
			for j := 0; j < 32; j++ {
				issue()
			}
			e.Sim.Run(0.2)
		}
		b.ReportMetric(float64(completed)/0.2*60, "joins/min")
	}
	b.Run("centralized", func(b *testing.B) { run(b, []int{0}) })
	b.Run("partitioned", func(b *testing.B) { run(b, []int{0, 1, 2, 3}) })
}

// ---- microbenchmarks of the functional kernels -------------------------------

func BenchmarkScanKernel(b *testing.B) {
	col := numacs.BuildColumn("c", seq(1_000_000, 1<<20), false)
	lo, hi, _ := col.EncodePredicate(1000, 1<<19)
	b.SetBytes(col.IVBytes())
	b.ResetTimer()
	var out []uint32
	for i := 0; i < b.N; i++ {
		out = col.ScanPositions(lo, hi, 0, col.Rows, out[:0])
	}
}

func BenchmarkIndexLookupKernel(b *testing.B) {
	col := numacs.BuildColumn("c", seq(1_000_000, 1<<16), true)
	lo, hi, _ := col.EncodePredicate(100, 110)
	b.ResetTimer()
	var out []uint32
	for i := 0; i < b.N; i++ {
		out = col.IndexLookupPositions(lo, hi, out[:0])
	}
}

func BenchmarkMaterializeKernel(b *testing.B) {
	col := numacs.BuildColumn("c", seq(1_000_000, 1<<16), false)
	lo, hi, _ := col.EncodePredicate(0, 1<<12)
	positions := col.ScanPositions(lo, hi, 0, col.Rows, nil)
	out := make([]int64, len(positions))
	b.SetBytes(int64(len(positions)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col.Materialize(positions, out)
	}
}

func seq(n int, mod int64) []int64 {
	vals := make([]int64, n)
	s := uint64(12345)
	for i := range vals {
		s = s*6364136223846793005 + 1442695040888963407
		vals[i] = int64(s>>33) % mod
	}
	return vals
}
