// tpch_q1 reproduces the Section 6.3 TPC-H experiment: continuously issued
// TPC-H-Q1-style aggregation instances over a lineitem-like table on a
// 16-socket machine, across physical-partitioning granularities and the
// Target/Bound strategies. Q1 is CPU-intensive (aggregation multiplications
// dominate), so stealing helps: Target beats Bound until partitioning gives
// Bound enough sockets to use.
package main

import (
	"flag"
	"fmt"

	"numacs"
)

func main() {
	var (
		rows    = flag.Int("rows", 200_000, "lineitem rows")
		clients = flag.Int("clients", 32, "concurrent clients")
		measure = flag.Float64("measure", 0.25, "virtual measurement window (s)")
	)
	flag.Parse()

	granularities := []int{1, 2, 4, 8, 16}
	strategies := []numacs.Strategy{numacs.Target, numacs.Bound}

	type key struct {
		g  int
		st numacs.Strategy
	}
	results := map[key]float64{}
	max := 0.0

	for _, g := range granularities {
		for _, st := range strategies {
			machine := numacs.SixteenSocketIvyBridge()
			engine := numacs.NewEngineWithStep(machine, 1, 50e-6)
			table := numacs.Q1Table(*rows, 1)
			if g == 1 {
				engine.Placer.PlaceTableOnSocket(table, 0) // RR degenerate case
			} else {
				table = engine.Placer.PlacePP(table, g)
			}
			cl := numacs.NewQ1Clients(engine, table, *clients, st, 7)
			cl.Start()
			engine.Sim.Run(0.05)
			engine.Counters.Reset()
			engine.Sim.Run(0.05 + *measure)
			qpm := engine.Counters.ThroughputQPM(*measure)
			results[key{g, st}] = qpm
			if qpm > max {
				max = qpm
			}
		}
	}

	fmt.Printf("TPC-H Q1 instances, %d clients, 16 sockets (normalized throughput)\n\n", *clients)
	fmt.Printf("%-10s  %8s  %8s\n", "placement", "Target", "Bound")
	for _, g := range granularities {
		name := "RR"
		if g > 1 {
			name = fmt.Sprintf("PP%d", g)
		}
		fmt.Printf("%-10s  %8.2f  %8.2f\n", name,
			results[key{g, numacs.Target}]/max, results[key{g, numacs.Bound}]/max)
	}
	fmt.Println("\nExpected shape (paper Fig. 19, left): Q1 is CPU-intensive, so")
	fmt.Println("Target >= Bound; increasing partitions lets Bound catch up by")
	fmt.Println("executing locally on more sockets.")
}
