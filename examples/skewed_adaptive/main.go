// skewed_adaptive demonstrates Sections 6.2 and 7: an 80/20-skewed workload
// hammers the two sockets holding the hot columns; the adaptive data placer
// notices the utilization imbalance and moves/repartitions hot columns until
// the sockets are balanced.
package main

import (
	"flag"
	"fmt"

	"numacs"
)

func run(adapt bool, rows, clients int) {
	machine := numacs.FourSocketIvyBridge()
	engine := numacs.NewEngine(machine, 1)
	table := numacs.GenerateDataset(numacs.DatasetConfig{
		Rows: rows, Columns: 32, BitcaseMin: 12, BitcaseMax: 21,
		Seed: 1, Synthetic: true,
	})
	engine.Placer.PlaceRRBlocks(table) // hot half of columns on half the sockets

	var placer *numacs.AdaptivePlacer
	if adapt {
		cfg := numacs.DefaultAdaptiveConfig()
		cfg.Period = 20e-3
		placer = numacs.NewAdaptivePlacer(engine, &numacs.Catalog{
			Tables: []*numacs.Table{table},
		}, cfg)
		engine.Sim.AddActor(placer)
	}

	cl := numacs.NewClients(engine, table, numacs.ClientsConfig{
		N: clients, Selectivity: 0.00001, Parallel: true,
		Strategy: numacs.Bound,
		Chooser:  numacs.SkewedChoice{HotProb: 0.8},
		Seed:     2,
	})
	cl.Start()

	// Let the placer converge, then measure.
	engine.Sim.Run(0.3)
	engine.Counters.Reset()
	const window = 0.25
	engine.Sim.Run(0.3 + window)

	name := "static RR"
	if adapt {
		name = "adaptive "
	}
	fmt.Printf("%s  throughput %10.0f q/min   per-socket GiB/s:", name,
		engine.Counters.ThroughputQPM(window))
	for _, v := range engine.Counters.MemoryThroughputGiBs(window) {
		fmt.Printf(" %5.1f", v)
	}
	fmt.Println()

	if placer != nil {
		fmt.Printf("\nplacer actions (%d total, %d pages moved):\n",
			len(placer.Actions), placer.PagesMoved)
		for i, a := range placer.Actions {
			if i >= 12 {
				fmt.Printf("  ... %d more\n", len(placer.Actions)-i)
				break
			}
			switch a.Kind {
			case "move":
				fmt.Printf("  t=%5.1fms  move        %s  S%d -> S%d\n", a.Time*1e3, a.Column, a.From+1, a.To+1)
			case "shrink":
				fmt.Printf("  t=%5.1fms  shrink      %s  -> %d parts\n", a.Time*1e3, a.Column, a.Parts)
			default:
				fmt.Printf("  t=%5.1fms  %s  %s  -> %d parts (new part on S%d)\n",
					a.Time*1e3, a.Kind, a.Column, a.Parts, a.To+1)
			}
		}
	}
}

func main() {
	var (
		rows    = flag.Int("rows", 200_000, "rows per column")
		clients = flag.Int("clients", 512, "concurrent clients")
	)
	flag.Parse()

	fmt.Println("80/20-skewed scan workload, Bound scheduling, RR placement:")
	fmt.Println()
	run(false, *rows, *clients)
	run(true, *rows, *clients)
	fmt.Println("\nThe adaptive placer (paper Section 7) balances per-socket memory")
	fmt.Println("throughput by moving hot columns off saturated sockets and")
	fmt.Println("IVP-partitioning the ones that dominate a socket on their own.")
}
