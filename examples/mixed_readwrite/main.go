// mixed_readwrite walks the write-path lifecycle of the main/delta
// architecture end to end: writers append into a hot column's per-socket
// delta fragments while scan clients keep querying it, scan throughput
// degrades as the uncompressed delta grows, the write-aware adaptive placer
// fires a background merge that folds the delta into a rebuilt
// dictionary-encoded main, and throughput recovers. A replicated second
// column turns write-hot and the placer's write-guard reclaims its copies.
//
// The simulated lifecycle is preceded by a small functional demo on a real
// (non-synthetic) column: inserts and updates land in the delta, a union
// scan sees them immediately, and the merge preserves the exact match
// counts.
package main

import (
	"flag"
	"fmt"
	"math/rand"

	"numacs"
)

// twoColumnWrites sends most writes to the hot scanned column and the rest
// to the replicated one (turning it write-hot).
type twoColumnWrites struct {
	hot, warm int
	pHot      float64
}

// Pick implements numacs.Chooser.
func (c twoColumnWrites) Pick(rng *rand.Rand, columns int) int {
	if rng.Float64() < c.pHot {
		return c.hot % columns
	}
	return c.warm % columns
}

// functionalDemo shows the delta kernels on real data: append, union-scan,
// merge, verify.
func functionalDemo() {
	fmt.Println("functional kernels (real data)")
	rng := rand.New(rand.NewSource(7))
	vals := make([]int64, 10_000)
	for i := range vals {
		vals[i] = rng.Int63n(1000)
	}
	col := numacs.BuildColumn("DEMO", vals, false)
	machine := numacs.FourSocketIvyBridge()
	engine := numacs.NewEngine(machine, 1)
	engine.Placer.PlaceColumnOnSocket(col, 0)

	before := col.CountMatchesWithDelta(100, 199)
	// Writes from clients on different sockets: each lands in its socket's
	// fragment.
	engine.ApplyInsert(col, 1, 150) // in range: +1 match
	engine.ApplyInsert(col, 2, 950) // out of range
	row := -1
	for r := 0; r < col.Rows; r++ {
		if v := col.Value(r); v >= 100 && v <= 199 {
			row = r
			break
		}
	}
	engine.ApplyUpdate(col, 3, row, 5000) // moves a matching row out of range: -1 match
	after := col.CountMatchesWithDelta(100, 199)
	fmt.Printf("  matches in [100,199]: %d before writes, %d after (+1 insert, -1 update)\n", before, after)

	mergedRows, _ := engine.Placer.MergeDelta(col, col.Delta.Snapshot())
	mainOnly := col.CountMatchesWithDelta(100, 199) // delta is empty now
	fmt.Printf("  merge folded %d delta rows; main-only count: %d (rows %d -> %d)\n\n",
		mergedRows, mainOnly, len(vals), col.Rows)
	if mainOnly != after {
		panic("merge changed the query result")
	}
}

func main() {
	var (
		rows    = flag.Int("rows", 120_000, "rows per column")
		clients = flag.Int("clients", 256, "concurrent scan clients")
		horizon = flag.Float64("horizon", 0.26, "total virtual time (s)")
		wfrac   = flag.Float64("update-fraction", 0.8, "fraction of writes that are updates")
	)
	flag.Parse()

	functionalDemo()

	machine := numacs.FourSocketIvyBridge()
	engine := numacs.NewEngine(machine, 1)
	table := numacs.GenerateDataset(numacs.DatasetConfig{
		Rows: *rows, Columns: 16, BitcaseMin: 12, BitcaseMax: 18,
		Seed: 1, Synthetic: true,
	})
	engine.Placer.PlaceRRBlocks(table) // four columns per socket
	hot := table.Parts[0].Columns[2]   // socket 0
	repl := table.Parts[0].Columns[5]  // socket 1, replicated below
	engine.Placer.AddReplica(repl, 2)
	engine.Placer.AddReplica(repl, 3)

	const windows = 13
	window := *horizon / windows
	cfg := numacs.DefaultAdaptiveConfig()
	cfg.Period = window / 4
	cfg.ImbalanceRatio = 1e9        // isolate the write-path levers
	cfg.StaleReplicaFraction = 1e-9 // replicas live until the write-guard fires
	cfg.MergeDeltaFraction = 0.4
	cfg.WriteHotFraction = 0.001 // scaled to the compressed virtual horizon
	placer := numacs.NewAdaptivePlacer(engine, &numacs.Catalog{Tables: []*numacs.Table{table}}, cfg)
	engine.Sim.AddActor(placer)

	// Scans: 80% on the hot column, a warm share on the replicated one.
	cl := numacs.NewClients(engine, table, numacs.ClientsConfig{
		N: *clients, Selectivity: 0.00001, Parallel: true,
		Strategy: numacs.Bound, Chooser: numacs.HotColumnChoice{Hot: 2, P: 0.8}, Seed: 2,
	})
	cl.Start()

	// Writes during the middle windows: update-heavy, 80% on the hot column,
	// 20% on the replicated one (turning it write-hot), appended from
	// socket-0 writers so the delta contends with the hot column's scans.
	writeStart, writeStop := 4*window, 9*window
	rate := cfg.MergeDeltaFraction * float64(hot.IVBytes()) / 12 / (3.2 * window) / 0.8
	writers := numacs.NewWriters(engine, table, numacs.WritersConfig{
		Rate: rate, UpdateFraction: *wfrac,
		Chooser: twoColumnWrites{hot: 2, warm: 5, pHot: 0.8},
		Sockets: []int{0},
		Start:   writeStart, Stop: writeStop, Seed: 5,
	})
	engine.Sim.AddActor(writers)

	fmt.Printf("mixed read/write lifecycle (%d clients, writes during windows 5-9 at %.0f rows/s)\n\n", *clients, rate)
	fmt.Printf("%-12s  %12s  %11s  %7s  %s\n", "window", "TP (q/min)", "delta KiB", "copies", "phase")
	for w := 0; w < windows; w++ {
		engine.Counters.Reset()
		engine.Sim.Run(float64(w+1) * window)
		phase := "read-only"
		switch {
		case float64(w)*window >= writeStop:
			phase = "recovered"
		case float64(w+1)*window > writeStart && float64(w)*window < writeStop:
			phase = "writing"
		}
		copies := 1 + len(repl.Replicas)
		fmt.Printf("%5.0f-%3.0f ms  %12.0f  %11.1f  %7d  %s\n",
			float64(w)*window*1e3, float64(w+1)*window*1e3,
			engine.Counters.ThroughputQPM(window), float64(hot.DeltaBytes())/1024, copies, phase)
	}

	fmt.Printf("\nwrite mix applied: %d inserts, %d updates; merges completed: %d (hot column now %d rows)\n",
		writers.Inserts, writers.Updates, engine.MergesCompleted, hot.Rows)
	fmt.Println("placer decisions:")
	for _, a := range placer.Actions {
		switch a.Kind {
		case "merge":
			fmt.Printf("  t=%6.1fms  merge        %-8s fold %d KiB into the main on S%d\n", a.Time*1e3, a.Column, a.Bytes>>10, a.To+1)
		case "drop-replica":
			fmt.Printf("  t=%6.1fms  drop-replica %-8s - copy on S%d (write-hot, %d KiB freed)\n", a.Time*1e3, a.Column, a.From+1, a.Bytes>>10)
		default:
			fmt.Printf("  t=%6.1fms  %-12s %-8s\n", a.Time*1e3, a.Kind, a.Column)
		}
	}
}
