// Quickstart: build a real dictionary-encoded column store, run actual
// scans/index lookups/materializations, then execute the same workload on a
// simulated 4-socket NUMA machine and compare scheduling strategies.
package main

import (
	"fmt"
	"math/rand"

	"numacs"
)

func main() {
	// ---- Part 1: the functional column store ------------------------------
	fmt.Println("== Part 1: functional column store ==")
	rng := rand.New(rand.NewSource(42))
	values := make([]int64, 100_000)
	for i := range values {
		values[i] = rng.Int63n(50_000)
	}
	col := numacs.BuildColumn("PRICE", values, true)
	fmt.Printf("column %q: %d rows, %d distinct values, bitcase %d, packed IV %d KiB\n",
		col.Name, col.Rows, col.NumDistinct(), col.Bitcase, col.IVBytes()/1024)

	// Encode a range predicate PRICE BETWEEN 1000 AND 1999 into vids.
	lo, hi, ok := col.EncodePredicate(1000, 1999)
	if !ok {
		panic("predicate selects nothing")
	}
	positions := col.ScanPositions(lo, hi, 0, col.Rows, nil)
	fmt.Printf("scan: %d matching rows (selectivity %.2f%%)\n",
		len(positions), 100*float64(len(positions))/float64(col.Rows))

	// The inverted index finds the same rows.
	viaIndex := col.IndexLookupPositions(lo, hi, nil)
	fmt.Printf("index lookup: %d matching rows (agrees: %v)\n",
		len(viaIndex), len(viaIndex) == len(positions))

	// Materialize the first few results.
	out := make([]int64, len(positions))
	col.Materialize(positions, out)
	fmt.Printf("first materialized values: %v\n\n", out[:5])

	// ---- Part 2: the simulated NUMA machine --------------------------------
	fmt.Println("== Part 2: concurrent scans on a simulated 4-socket machine ==")
	for _, strategy := range []numacs.Strategy{numacs.OS, numacs.Bound} {
		machine := numacs.FourSocketIvyBridge()
		engine := numacs.NewEngine(machine, 1)
		table := numacs.GenerateDataset(numacs.DatasetConfig{
			Rows: 100_000, Columns: 16, BitcaseMin: 12, BitcaseMax: 21,
			Seed: 1, Synthetic: true,
		})
		engine.Placer.PlaceRR(table) // one column per socket, round-robin

		clients := numacs.NewClients(engine, table, numacs.ClientsConfig{
			N: 256, Selectivity: 0.0001, Parallel: true, Strategy: strategy, Seed: 2,
		})
		clients.Start()

		const window = 0.25 // virtual seconds
		engine.Sim.Run(0.05)
		engine.Counters.Reset()
		engine.Sim.Run(0.05 + window)

		memTP := 0.0
		for _, v := range engine.Counters.MemoryThroughputGiBs(window) {
			memTP += v
		}
		fmt.Printf("%-6s  throughput %10.0f q/min   memory %6.1f GiB/s   stolen tasks %d\n",
			strategy, engine.Counters.ThroughputQPM(window), memTP,
			engine.Counters.TasksStolen)
	}
	fmt.Println("\nBound keeps scans local to each column's socket; OS scheduling")
	fmt.Println("floods the interconnect with remote accesses (paper Figure 1).")
}
