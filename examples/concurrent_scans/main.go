// concurrent_scans reproduces the Figure 8 scenario interactively: a uniform
// memory-intensive scan workload on RR-placed columns, swept over client
// counts and the three scheduling strategies, printing throughput and the
// hardware counters that explain it.
package main

import (
	"flag"
	"fmt"

	"numacs"
)

func main() {
	var (
		rows    = flag.Int("rows", 200_000, "rows per column")
		cols    = flag.Int("cols", 32, "number of columns")
		sel     = flag.Float64("sel", 0.00001, "predicate selectivity")
		measure = flag.Float64("measure", 0.25, "virtual measurement window (s)")
	)
	flag.Parse()

	clientCounts := []int{1, 4, 16, 64, 256, 1024}
	strategies := []numacs.Strategy{numacs.OS, numacs.Target, numacs.Bound}

	fmt.Printf("%-8s", "clients")
	for _, st := range strategies {
		fmt.Printf("  %12s", st)
	}
	fmt.Println("  (q/min)")

	type cell struct {
		qpm, mem float64
		stolen   uint64
	}
	last := map[numacs.Strategy]cell{}
	for _, n := range clientCounts {
		fmt.Printf("%-8d", n)
		for _, st := range strategies {
			machine := numacs.FourSocketIvyBridge()
			engine := numacs.NewEngine(machine, 1)
			table := numacs.GenerateDataset(numacs.DatasetConfig{
				Rows: *rows, Columns: *cols, BitcaseMin: 12, BitcaseMax: 21,
				Seed: 1, Synthetic: true,
			})
			engine.Placer.PlaceRR(table)
			clients := numacs.NewClients(engine, table, numacs.ClientsConfig{
				N: n, Selectivity: *sel, Parallel: true, Strategy: st, Seed: 2,
			})
			clients.Start()
			engine.Sim.Run(0.05)
			engine.Counters.Reset()
			engine.Sim.Run(0.05 + *measure)

			mem := 0.0
			for _, v := range engine.Counters.MemoryThroughputGiBs(*measure) {
				mem += v
			}
			qpm := engine.Counters.ThroughputQPM(*measure)
			last[st] = cell{qpm, mem, engine.Counters.TasksStolen}
			fmt.Printf("  %12.0f", qpm)
		}
		fmt.Println()
	}

	fmt.Printf("\nat %d clients:\n", clientCounts[len(clientCounts)-1])
	for _, st := range strategies {
		c := last[st]
		fmt.Printf("  %-6s  memory throughput %6.1f GiB/s, stolen tasks %d\n",
			st, c.mem, c.stolen)
	}
	fmt.Println("\nExpected shape (paper Fig. 8): Bound ~= Target >> OS (~5x),")
	fmt.Println("with the gap explained by local vs remote memory bandwidth.")
}
