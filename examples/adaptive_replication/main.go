// adaptive_replication demonstrates the Section 7 placer's replication
// lever (the Section 4.2 "replicate some or all components of a column"
// placement, created adaptively): a single read-hot column saturates its
// socket's memory controller, the placer copies it to the other sockets
// under a memory budget, and — when the workload shifts to a different
// column — garbage-collects the stale replicas and replicates the new
// hotspot instead.
package main

import (
	"flag"
	"fmt"
	"math/rand"

	"numacs"
)

// shiftingHotspot queries hot column A for the first half of the run and
// hot column B afterwards, with a little uniform background traffic. The
// shift is what forces the placer through the full replica lifecycle:
// replicate A, reclaim A, replicate B.
type shiftingHotspot struct {
	engine  *numacs.Engine
	shiftAt float64
	a, b    int
	p       float64
}

func (s shiftingHotspot) Pick(rng *rand.Rand, columns int) int {
	hot := s.a
	if s.engine.Sim.Now() >= s.shiftAt {
		hot = s.b
	}
	if rng.Float64() < s.p {
		return hot % columns
	}
	return rng.Intn(columns)
}

func main() {
	var (
		rows    = flag.Int("rows", 120_000, "rows per column")
		clients = flag.Int("clients", 256, "concurrent clients")
		horizon = flag.Float64("horizon", 0.48, "total virtual time (s)")
		budget  = flag.Int64("replica-budget-mib", 64, "replica memory budget in MiB")
	)
	flag.Parse()

	machine := numacs.FourSocketIvyBridge()
	engine := numacs.NewEngine(machine, 1)
	table := numacs.GenerateDataset(numacs.DatasetConfig{
		Rows: *rows, Columns: 16, BitcaseMin: 12, BitcaseMax: 18,
		Seed: 1, Synthetic: true,
	})
	engine.Placer.PlaceRRBlocks(table) // four columns per socket

	cfg := numacs.DefaultAdaptiveConfig()
	cfg.Period = *horizon / 24
	cfg.ReplicaBudgetBytes = *budget << 20
	placer := numacs.NewAdaptivePlacer(engine, &numacs.Catalog{Tables: []*numacs.Table{table}}, cfg)
	engine.Sim.AddActor(placer)

	// Hot column 2 lives on socket 1; after the shift, hot column 9 lives on
	// socket 3 — the placer must tear the first replica set down to fund the
	// second inside the budget.
	// Unparallelized statements: the workload where move/partition cannot
	// help (a partitioned column forces single-task scans remote, Figure 10)
	// and replication shines.
	chooser := shiftingHotspot{engine: engine, shiftAt: *horizon / 2, a: 2, b: 9, p: 0.95}
	cl := numacs.NewClients(engine, table, numacs.ClientsConfig{
		N: *clients, Selectivity: 0.00001, Parallel: false,
		Strategy: numacs.Bound, Chooser: chooser, Seed: 2,
	})
	cl.Start()

	fmt.Printf("read-hot workload (%d clients, 95%% on one column, hotspot shifts at %.0fms)\n\n",
		*clients, *horizon/2*1e3)
	fmt.Printf("%-12s  %12s  %14s  %s\n", "window", "TP (q/min)", "replica KiB", "per-socket memTP (GiB/s)")
	const windows = 8
	window := *horizon / windows
	for w := 0; w < windows; w++ {
		engine.Counters.Reset()
		engine.Sim.Run(float64(w+1) * window)
		fmt.Printf("%5.0f-%3.0f ms  %12.0f  %14d ", float64(w)*window*1e3, float64(w+1)*window*1e3,
			engine.Counters.ThroughputQPM(window), placer.ReplicaBytes()>>10)
		for _, v := range engine.Counters.MemoryThroughputGiBs(window) {
			fmt.Printf(" %5.1f", v)
		}
		fmt.Println()
	}

	fmt.Printf("\nplacer decisions (%d pages moved, %d pages copied, peak replica KiB %d of %d budget):\n",
		placer.PagesMoved, placer.PagesCopied, placer.PeakReplicaBytes>>10, cfg.ReplicaBudgetBytes>>10)
	for _, a := range placer.Actions {
		switch a.Kind {
		case "replicate":
			fmt.Printf("  t=%6.1fms  replicate    %-8s + copy on S%d (%d KiB)\n", a.Time*1e3, a.Column, a.To+1, a.Bytes>>10)
		case "drop-replica":
			fmt.Printf("  t=%6.1fms  drop-replica %-8s - copy on S%d (%d KiB freed)\n", a.Time*1e3, a.Column, a.From+1, a.Bytes>>10)
		case "move":
			fmt.Printf("  t=%6.1fms  move         %-8s S%d -> S%d\n", a.Time*1e3, a.Column, a.From+1, a.To+1)
		case "shrink":
			fmt.Printf("  t=%6.1fms  shrink       %-8s -> %d parts\n", a.Time*1e3, a.Column, a.Parts)
		default:
			fmt.Printf("  t=%6.1fms  %-12s %-8s -> %d parts (new on S%d)\n", a.Time*1e3, a.Kind, a.Column, a.Parts, a.To+1)
		}
	}
}
