// star_join demonstrates the Section 8 extension: a NUMA-aware hash join
// between a dimension and a fact column. The experiment compares placements
// of the operator-internal hash table — centralized on one socket vs
// partitioned across the build data's sockets — which is exactly the
// consideration the paper calls out for joins ("the placement of the data
// structures used internally in the operator").
//
// Part 3 composes the full star-join statement on the operator-pipeline
// layer: scan the dimension predicate, build the hash table from the
// qualifying keys, probe it with the fact foreign keys, and aggregate the
// matching measures — four phases scheduled as ONE statement, which the
// separate scan and join execution paths could not express.
package main

import (
	"flag"
	"fmt"
	"math/rand"

	"numacs"
)

func main() {
	var (
		dimRows  = flag.Int("dim", 30_000, "dimension rows (build side)")
		factRows = flag.Int("fact", 120_000, "fact rows (probe side)")
		clients  = flag.Int("clients", 32, "concurrent join queries")
		measure  = flag.Float64("measure", 0.25, "virtual window (s)")
	)
	flag.Parse()

	// Part 1: the functional join on real data.
	rng := rand.New(rand.NewSource(1))
	dimVals := make([]int64, 1000)
	for i := range dimVals {
		dimVals[i] = int64(i)
	}
	factVals := make([]int64, 5000)
	for i := range factVals {
		factVals[i] = rng.Int63n(1200) // some fact keys miss the dimension
	}
	dim := numacs.BuildColumn("DIM_ID", dimVals, false)
	fact := numacs.BuildColumn("FACT_FK", factVals, false)
	pairs := numacs.HashJoin(dim, fact)
	fmt.Printf("functional join: %d fact rows x %d dim rows -> %d matches\n\n",
		fact.Rows, dim.Rows, len(pairs))

	// Part 2: simulated NUMA-aware execution with two hash-table placements.
	for _, ht := range [][]int{{0}, {0, 1, 2, 3}} {
		engine := numacs.NewEngineWithStep(numacs.FourSocketIvyBridge(), 1, 10e-6)
		build := numacs.BuildColumn("DIM", seq(*dimRows, 10_000), false)
		probe := numacs.BuildColumn("FACT", seq(*factRows, 10_000), false)
		engine.Placer.PlaceIVP(build, []int{0, 1, 2, 3})
		engine.Placer.PlaceIVP(probe, []int{0, 1, 2, 3})

		completed := 0
		inflight := 0
		var issue func()
		issue = func() {
			if inflight >= *clients {
				return
			}
			inflight++
			numacs.ExecuteJoin(engine, numacs.JoinSpec{
				Build: build, Probe: probe, Strategy: numacs.Bound,
				HTSockets: ht, HitsPerProbeRow: 1,
				OnDone: func(float64) { completed++; inflight--; issue() },
			})
		}
		for i := 0; i < *clients; i++ {
			issue()
		}
		engine.Sim.Run(*measure)

		name := "centralized (socket 1) "
		if len(ht) > 1 {
			name = "partitioned (4 sockets)"
		}
		mem := 0.0
		for _, v := range engine.Counters.MemoryThroughputGiBs(*measure) {
			mem += v
		}
		fmt.Printf("hash table %s  %8.0f joins/min   memory %6.1f GiB/s\n",
			name, float64(completed)/(*measure)*60, mem)
	}
	fmt.Println("\nCo-locating the hash-table partitions with the build data keeps")
	fmt.Println("both the build inserts and the probe lookups socket-local.")

	// Part 3: the composed scan -> join -> aggregate statement.
	fmt.Println("\ncomposed star-join statement (scan dim, join fact, aggregate):")
	for _, st := range []numacs.Strategy{numacs.OS, numacs.Target, numacs.Bound} {
		engine := numacs.NewEngineWithStep(numacs.FourSocketIvyBridge(), 1, 10e-6)
		dim := numacs.NewTable("DIM", []*numacs.Column{
			numacs.BuildColumn("D_DATE", seq(*dimRows, 2_000), false),
			numacs.BuildColumn("D_ID", seq(*dimRows, 10_000), false),
		})
		fact := numacs.NewTable("FACT", []*numacs.Column{
			numacs.BuildColumn("F_FK", seq(*factRows, 10_000), false),
		})
		for _, c := range dim.Parts[0].Columns {
			engine.Placer.PlaceIVP(c, []int{0, 1, 2, 3})
		}
		engine.Placer.PlaceIVP(fact.Parts[0].Columns[0], []int{0, 1, 2, 3})

		completed, inflight := 0, 0
		var issue func()
		issue = func() {
			if inflight >= *clients {
				return
			}
			inflight++
			numacs.ExecuteStarJoin(engine, numacs.StarJoinSpec{
				Dim: dim, DimPredicate: "D_DATE", DimKey: "D_ID",
				Fact: fact, FactFK: "F_FK",
				Selectivity:     0.05, // 5% of the dimension qualifies
				HitsPerProbeRow: 1,
				AggBytesPerRow:  12, AggCyclesPerRow: 24,
				HTSockets: []int{0, 1, 2, 3},
				Strategy:  st,
				OnDone:    func(float64) { completed++; inflight--; issue() },
			})
		}
		for i := 0; i < *clients; i++ {
			issue()
		}
		engine.Sim.Run(*measure)

		perSock := engine.Counters.MemoryThroughputGiBs(*measure)
		mem := 0.0
		for _, v := range perSock {
			mem += v
		}
		fmt.Printf("  %-7s %8.0f statements/min   memory %6.1f GiB/s   per-socket %v\n",
			st, float64(completed)/(*measure)*60, mem, fmtGiBs(perSock))
	}
	fmt.Println("\nThe composed statement keeps every phase's tasks on the sockets of")
	fmt.Println("their inputs; with Bound, the whole star join runs without QPI crossings")
	fmt.Println("except the partitioned hash-table probes.")
}

func fmtGiBs(v []float64) []string {
	out := make([]string, len(v))
	for i, x := range v {
		out[i] = fmt.Sprintf("%.1f", x)
	}
	return out
}

func seq(n int, mod int64) []int64 {
	vals := make([]int64, n)
	s := uint64(12345)
	for i := range vals {
		s = s*6364136223846793005 + 1442695040888963407
		vals[i] = int64(s>>33) % mod
	}
	return vals
}
