module numacs

go 1.22
