// Command scanbench regenerates the paper's tables and figures on the
// simulated NUMA machines.
//
// Usage:
//
//	scanbench -list
//	scanbench -exp fig8
//	scanbench -all
//	scanbench -exp fig12 -scale quick
//
// Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"numacs/internal/harness"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list experiment ids and exit")
		exp   = flag.String("exp", "", "experiment id to run (comma-separated for several)")
		all   = flag.Bool("all", false, "run every experiment")
		scale = flag.String("scale", "full", "experiment scale: full or quick")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	var sc harness.Scale
	switch *scale {
	case "full":
		sc = harness.FullScale()
	case "quick":
		sc = harness.QuickScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want full or quick)\n", *scale)
		os.Exit(2)
	}

	var ids []string
	switch {
	case *all:
		ids = harness.IDs()
	case *exp != "":
		ids = strings.Split(*exp, ",")
	default:
		fmt.Fprintln(os.Stderr, "nothing to do: pass -exp <id>, -all, or -list")
		os.Exit(2)
	}

	for _, id := range ids {
		e, ok := harness.ByID(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
			os.Exit(2)
		}
		start := time.Now()
		rep := e.Run(sc)
		fmt.Println(rep.Render())
		fmt.Printf("[%s: %s scale, wall %.1fs]\n\n", e.ID, sc.Name, time.Since(start).Seconds())
	}
}
