// Command scanbench regenerates the paper's tables and figures on the
// simulated NUMA machines.
//
// Usage:
//
//	scanbench -list
//	scanbench -exp fig8
//	scanbench -all
//	scanbench -exp fig12 -scale quick
//	scanbench -exp shared-scan -scale quick -json
//	scanbench -exp chaos-socket -scale quick -trace traces/
//	scanbench -exp chaos-socket -scale quick -triage
//	scanbench -explain planner
//
// -list prints one registered experiment id per line, so scripts (and the
// CI experiment loop) can enumerate every experiment without a hand-kept
// list; -explain <id> prints the experiment's EXPLAIN rendering (logical and
// optimized physical plans over a fixed fixture schema) — the exact text the
// CI plan-golden gate diffs against testdata/plans/<id>.txt — and exits with
// status 2 for experiments that expose no planner walkthrough; -json emits each report as a JSON document instead of rendered
// tables — the format the CI bench job archives into the BENCH_<run>.json
// perf-trajectory artifact. -trace <dir> writes each experiment's
// flight-recorder data (when the experiment records one) as <dir>/<id>.jsonl
// plus a Perfetto/chrome://tracing-loadable <dir>/<id>.trace.json. -triage
// runs the insight layer's automated analysis on each traced experiment and
// prints the triage report (incidents with suspect decisions, SLO verdicts,
// blame decomposition); combined with -trace it also writes
// <dir>/<id>.triage.json, and with -json the triage rides inside the report
// document. -cpuprofile / -memprofile write pprof profiles of the whole
// invocation. Each experiment prints the same rows/series the paper reports;
// see EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"numacs/internal/harness"
	"numacs/internal/insight"
	"numacs/internal/trace"
)

func main() {
	var (
		list     = flag.Bool("list", false, "print registered experiment ids, one per line, and exit")
		explain  = flag.String("explain", "", "print the experiment's planner EXPLAIN rendering and exit")
		exp      = flag.String("exp", "", "experiment id to run (comma-separated for several)")
		all      = flag.Bool("all", false, "run every experiment")
		scale    = flag.String("scale", "full", "experiment scale: full or quick")
		jsonOut  = flag.Bool("json", false, "emit each report as JSON instead of rendered tables")
		traceDir = flag.String("trace", "", "directory to write flight-recorder exports into (<id>.jsonl and <id>.trace.json)")
		triage   = flag.Bool("triage", false, "run the insight analyzer on traced experiments and print the triage report (with -trace also writes <id>.triage.json)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the whole invocation to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := createWithDirs(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := createWithDirs(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			f.Close()
		}()
	}

	if *list {
		for _, id := range harness.IDs() {
			fmt.Println(id)
		}
		return
	}

	if *explain != "" {
		e, ok := harness.ByID(*explain)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *explain)
			os.Exit(2)
		}
		if e.Explain == nil {
			fmt.Fprintf(os.Stderr, "experiment %q exposes no planner EXPLAIN\n", *explain)
			os.Exit(2)
		}
		fmt.Print(e.Explain())
		return
	}

	var sc harness.Scale
	switch *scale {
	case "full":
		sc = harness.FullScale()
	case "quick":
		sc = harness.QuickScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want full or quick)\n", *scale)
		os.Exit(2)
	}

	var ids []string
	switch {
	case *all:
		ids = harness.IDs()
	case *exp != "":
		ids = strings.Split(*exp, ",")
	default:
		fmt.Fprintln(os.Stderr, "nothing to do: pass -exp <id>, -all, or -list")
		os.Exit(2)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	for _, id := range ids {
		e, ok := harness.ByID(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
			os.Exit(2)
		}
		start := time.Now()
		rep := e.Run(sc)
		var tri *insight.TriageReport
		if *triage {
			tri = triageFor(rep)
			if tri == nil {
				fmt.Fprintf(os.Stderr, "[%s: no flight-recorder data, skipping -triage]\n", e.ID)
			}
		}
		if *traceDir != "" {
			if err := writeTrace(*traceDir, e.ID, rep); err != nil {
				fmt.Fprintf(os.Stderr, "writing trace for %s: %v\n", e.ID, err)
				os.Exit(1)
			}
			if tri != nil {
				if err := writeTriage(*traceDir, e.ID, tri); err != nil {
					fmt.Fprintf(os.Stderr, "writing triage for %s: %v\n", e.ID, err)
					os.Exit(1)
				}
			}
		}
		if *jsonOut {
			// Keep stdout pure JSON; the timing note goes to stderr.
			rep.Triage = tri
			if err := enc.Encode(rep); err != nil {
				fmt.Fprintf(os.Stderr, "encoding %s: %v\n", e.ID, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "[%s: %s scale, wall %.1fs]\n", e.ID, sc.Name, time.Since(start).Seconds())
			continue
		}
		fmt.Println(rep.Render())
		if tri != nil {
			fmt.Println(tri.Render())
		}
		fmt.Printf("[%s: %s scale, wall %.1fs]\n\n", e.ID, sc.Name, time.Since(start).Seconds())
	}
}

// triageFor returns the experiment's triage report: the one the experiment
// already attached (the chaos suite analyzes against its own SLO spec), or a
// fresh analysis under the baseline no-livelock objective for traced
// experiments that attach none. Untraced experiments return nil.
func triageFor(rep *harness.Report) *insight.TriageReport {
	if rep.Triage != nil {
		return rep.Triage
	}
	if rep.Trace == nil {
		return nil
	}
	return insight.Analyze(rep.Trace, insight.SLOSpec{MinWindowDone: 1})
}

// writeTriage writes the structured triage report as <dir>/<id>.triage.json
// beside the flight-recorder exports.
func writeTriage(dir, id string, tri *insight.TriageReport) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".triage.json"))
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(tri); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// createWithDirs creates the file, making parent directories as needed (the
// CI bench job points -cpuprofile/-memprofile into a not-yet-existing
// profiles/ directory).
func createWithDirs(path string) (*os.File, error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	return os.Create(path)
}

// writeTrace exports an experiment's flight-recorder data into dir as a JSONL
// dump and a Chrome trace-event file. Experiments that record no trace are
// skipped with a note — only the chaos suite attaches one today.
func writeTrace(dir, id string, rep *harness.Report) error {
	if rep.Trace == nil {
		fmt.Fprintf(os.Stderr, "[%s: no flight-recorder data, skipping -trace export]\n", id)
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	jf, err := os.Create(filepath.Join(dir, id+".jsonl"))
	if err != nil {
		return err
	}
	if err := rep.Trace.WriteJSONL(jf); err != nil {
		jf.Close()
		return err
	}
	if err := jf.Close(); err != nil {
		return err
	}
	cf, err := os.Create(filepath.Join(dir, id+".trace.json"))
	if err != nil {
		return err
	}
	if err := trace.ExportChrome(cf, rep.Trace); err != nil {
		cf.Close()
		return err
	}
	return cf.Close()
}
