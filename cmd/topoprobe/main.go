// Command topoprobe prints the simulated machines' topology and the Table 1
// calibration (latencies and streaming bandwidths), plus the link graph for
// inspection.
package main

import (
	"flag"
	"fmt"
	"os"

	"numacs"
	"numacs/internal/harness"
)

func main() {
	var (
		machine = flag.String("machine", "", "print link graph for one machine: 4s, 8s, 16s, or 32s")
	)
	flag.Parse()

	if *machine != "" {
		var m *numacs.Machine
		switch *machine {
		case "4s":
			m = numacs.FourSocketIvyBridge()
		case "8s":
			m = numacs.EightSocketWestmere()
		case "16s":
			m = numacs.SixteenSocketIvyBridge()
		case "32s":
			m = numacs.ThirtyTwoSocketIvyBridge()
		default:
			fmt.Fprintf(os.Stderr, "unknown machine %q\n", *machine)
			os.Exit(2)
		}
		printMachine(m)
		return
	}

	exp, _ := harness.ByID("table1")
	fmt.Println(exp.Run(harness.FullScale()).Render())
}

func printMachine(m *numacs.Machine) {
	fmt.Printf("%s: %d sockets x %d cores x %d threads @ %.1f GHz, %s coherence\n",
		m.Name, m.Sockets, m.CoresPerSocket, m.ThreadsPerCore, m.FreqHz/1e9, m.Coherence)
	fmt.Printf("per-socket MC bandwidth: %.1f GiB/s\n", m.MCBandwidth/(1<<30))
	fmt.Printf("nodes: %d (%d sockets + %d routers), %d directed links\n",
		m.Nodes, m.Sockets, m.Nodes-m.Sockets, len(m.Links))
	fmt.Println("\nlinks (raw capacity incl. protocol overhead):")
	for i, l := range m.Links {
		fmt.Printf("  link %3d: %3d -> %3d  %.1f GiB/s\n", i, l.From, l.To, l.Bandwidth/(1<<30))
	}
	fmt.Println("\nlatency matrix (ns):")
	fmt.Printf("     ")
	for d := 0; d < m.Sockets; d++ {
		fmt.Printf("%5d", d)
	}
	fmt.Println()
	for s := 0; s < m.Sockets; s++ {
		fmt.Printf("%4d ", s)
		for d := 0; d < m.Sockets; d++ {
			fmt.Printf("%5.0f", m.Latency(s, d)*1e9)
		}
		fmt.Println()
	}
}
