package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: numacs/internal/colstore
BenchmarkScanPositions/bits=4-4         	     100	  12000 ns/op	         0.450 ns/row
BenchmarkScanPositions/bits=4-4         	     100	  13000 ns/op	         0.520 ns/row
BenchmarkScanPositions/bits=4-4         	     100	  11000 ns/op	         0.430 ns/row
BenchmarkScanPositions/bits=12-4        	      50	  30000 ns/op	         1.100 ns/row
BenchmarkSharedPred/bits=4/n=8-4        	      20	  90000 ns/op	         2.300 ns/row
BenchmarkNoRowMetric-4                  	     100	   5000 ns/op
PASS
`

// TestParseBenchMinOverRepeats: repeats reduce to the fastest pass, the
// GOMAXPROCS suffix is stripped, and benchmarks without the ns/row metric are
// ignored.
func TestParseBenchMinOverRepeats(t *testing.T) {
	m, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(m), m)
	}
	if got := m["BenchmarkScanPositions/bits=4"]; got != 0.430 {
		t.Fatalf("min over repeats = %v, want 0.430", got)
	}
	if got := m["BenchmarkSharedPred/bits=4/n=8"]; got != 2.300 {
		t.Fatalf("shared pred = %v, want 2.300", got)
	}
	if _, ok := m["BenchmarkNoRowMetric"]; ok {
		t.Fatal("benchmark without ns/row metric must be ignored")
	}
}

// TestExtractRawFromArtifact: a BENCH_<run>.json artifact contributes its
// kernel_bench field; raw text passes through unchanged.
func TestExtractRawFromArtifact(t *testing.T) {
	artifact, _ := json.Marshal(map[string]any{
		"run": 7, "commit": "abc", "kernel_bench": sampleBench,
	})
	raw, err := extractRaw(artifact)
	if err != nil {
		t.Fatal(err)
	}
	if raw != sampleBench {
		t.Fatal("kernel_bench field not extracted")
	}
	raw, err = extractRaw([]byte(sampleBench))
	if err != nil || raw != sampleBench {
		t.Fatalf("raw text must pass through: %v", err)
	}
}

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestGateFailsOnRegression: a >10% ns/row slowdown on a common benchmark
// exits 1; a speedup or small drift exits 0.
func TestGateFailsOnRegression(t *testing.T) {
	prev := writeFile(t, "prev.txt",
		"BenchmarkScanPositions/bits=4-4 100 1000 ns/op 0.500 ns/row\n")
	slow := writeFile(t, "slow.txt",
		"BenchmarkScanPositions/bits=4-4 100 1000 ns/op 0.600 ns/row\n")
	fast := writeFile(t, "fast.txt",
		"BenchmarkScanPositions/bits=4-4 100 1000 ns/op 0.520 ns/row\n")
	var sb strings.Builder
	if code := run(prev, slow, 0.10, &sb); code != 1 {
		t.Fatalf("20%% regression: exit %d, want 1\n%s", code, sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESSION") {
		t.Fatalf("regression not reported:\n%s", sb.String())
	}
	sb.Reset()
	if code := run(prev, fast, 0.10, &sb); code != 0 {
		t.Fatalf("4%% drift: exit %d, want 0\n%s", code, sb.String())
	}
}

// TestGateSoftPasses: a missing previous artifact or disjoint benchmark sets
// must warn and exit 0 — the first main run has nothing to compare against.
func TestGateSoftPasses(t *testing.T) {
	curr := writeFile(t, "curr.txt",
		"BenchmarkScanPositions/bits=4-4 100 1000 ns/op 0.500 ns/row\n")
	var sb strings.Builder
	if code := run(filepath.Join(t.TempDir(), "absent.json"), curr, 0.10, &sb); code != 0 {
		t.Fatalf("missing prev: exit %d, want 0\n%s", code, sb.String())
	}
	if !strings.Contains(sb.String(), "::warning::") {
		t.Fatalf("missing prev must warn:\n%s", sb.String())
	}
	sb.Reset()
	prev := writeFile(t, "prev.txt",
		"BenchmarkSomethingElse-4 100 1000 ns/op 0.500 ns/row\n")
	if code := run(prev, curr, 0.10, &sb); code != 0 {
		t.Fatalf("disjoint sets: exit %d, want 0\n%s", code, sb.String())
	}
	if !strings.Contains(sb.String(), "::warning::") {
		t.Fatalf("disjoint sets must warn:\n%s", sb.String())
	}
}

// TestGateWarnsOnEmptyArtifact: a previous artifact that loads but yields no
// benchmarks (empty or mangled kernel_bench field) must emit the dedicated
// empty-artifact warning — not the generic disjoint-sets one — and exit 0.
func TestGateWarnsOnEmptyArtifact(t *testing.T) {
	curr := writeFile(t, "curr.txt",
		"BenchmarkScanPositions/bits=4-4 100 1000 ns/op 0.500 ns/row\n")
	for name, content := range map[string]string{
		"empty.json":   `{"run": 7, "commit": "abc", "kernel_bench": ""}`,
		"mangled.json": `{"run": 7, "commit": "abc", "kernel_bench": "jq error: null"}`,
	} {
		prev := writeFile(t, name, content)
		var sb strings.Builder
		if code := run(prev, curr, 0.10, &sb); code != 0 {
			t.Fatalf("%s: exit %d, want 0\n%s", name, code, sb.String())
		}
		if !strings.Contains(sb.String(), "::warning::") ||
			!strings.Contains(sb.String(), "no ns/row benchmarks") {
			t.Fatalf("%s must trigger the empty-artifact warning:\n%s", name, sb.String())
		}
	}
}

// TestTrendTrajectory: -trend orders BENCH_*.json artifacts by run number
// (not glob order), prints each benchmark's min-over-repeats ns/row per run
// with "-" holes for absent runs, and reports the first-to-last drift.
func TestTrendTrajectory(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Run 10 sorts after run 9 numerically even though "BENCH_10" globs first.
	write("BENCH_9.json", `{"run": 9, "kernel_bench": "BenchmarkScan-4 100 1000 ns/op 0.500 ns/row\nBenchmarkScan-4 100 1000 ns/op 0.480 ns/row\n"}`)
	write("BENCH_10.json", `{"run": 10, "kernel_bench": "BenchmarkScan-4 100 1000 ns/op 0.400 ns/row\nBenchmarkNew-4 100 1000 ns/op 2.000 ns/row\n"}`)
	write("BENCH_11.json", `{"run": 11, "kernel_bench": "BenchmarkScan-4 100 1000 ns/op 0.360 ns/row\n"}`)
	var sb strings.Builder
	if code := runTrend(dir, &sb); code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, sb.String())
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !strings.Contains(lines[0], "run 9") || !strings.Contains(lines[0], "run 11") {
		t.Fatalf("header misses run labels:\n%s", out)
	}
	if strings.Index(lines[0], "run 9") > strings.Index(lines[0], "run 10") {
		t.Fatalf("runs not ordered numerically:\n%s", out)
	}
	var scanLine, newLine string
	for _, l := range lines {
		if strings.HasPrefix(l, "BenchmarkScan") {
			scanLine = l
		}
		if strings.HasPrefix(l, "BenchmarkNew") {
			newLine = l
		}
	}
	// Min over repeats: run 9 contributes 0.480, not 0.500; the drift is
	// first-to-last 0.480 -> 0.360 = -25%.
	if !strings.Contains(scanLine, "0.480") || strings.Contains(scanLine, "0.500") {
		t.Fatalf("min-over-repeats not applied:\n%s", scanLine)
	}
	if !strings.Contains(scanLine, "-25.0%") {
		t.Fatalf("first-to-last drift missing:\n%s", scanLine)
	}
	// BenchmarkNew appears only in run 10: holes render as "-", single-run
	// benchmarks report "new" instead of a drift.
	if newLine == "" || !strings.HasSuffix(newLine, "new") {
		t.Fatalf("single-run benchmark must report new:\n%s", newLine)
	}
}

// TestTrendEmptyDir: a directory with no artifacts warns and exits 0.
func TestTrendEmptyDir(t *testing.T) {
	var sb strings.Builder
	if code := runTrend(t.TempDir(), &sb); code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, sb.String())
	}
	if !strings.Contains(sb.String(), "::warning::") {
		t.Fatalf("empty dir must warn:\n%s", sb.String())
	}
}

// TestGateRenamedSuffix: prev stored with a different GOMAXPROCS suffix still
// matches — the suffix is stripped on both sides.
func TestGateRenamedSuffix(t *testing.T) {
	prev := writeFile(t, "prev.txt",
		"BenchmarkScanPositions/bits=4-16 100 1000 ns/op 0.500 ns/row\n")
	curr := writeFile(t, "curr.txt",
		"BenchmarkScanPositions/bits=4-2 100 1000 ns/op 0.490 ns/row\n")
	var sb strings.Builder
	if code := run(prev, curr, 0.10, &sb); code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, sb.String())
	}
	if !strings.Contains(sb.String(), "1 benchmarks within") {
		t.Fatalf("suffix-stripped names must compare:\n%s", sb.String())
	}
}
