// Command benchdiff is the CI perf-regression gate for the colstore batch
// kernels. It parses two sets of Go benchmark output — the previous main
// run's (stored inside its BENCH_<run>.json artifact) and the current run's —
// reduces each benchmark's repeats to the fastest pass of its ns/row metric,
// and fails (exit 1) when any benchmark common to both runs slowed down by
// more than the threshold. The minimum over -count repeats is what makes the
// gate usable on shared CI runners: scheduler noise only ever makes a pass
// slower, so the per-run minimum is the low-noise estimate of the kernel's
// true speed.
//
// Either input may be raw `go test -bench` text or a BENCH_<run>.json file
// (detected by a leading '{'), in which case the "kernel_bench" field holds
// the raw text. Missing inputs and disjoint benchmark sets soft-pass with a
// warning, so the first run on a fresh repository (no prior artifact) does
// not fail.
//
// A second mode, -trend <dir>, reads every BENCH_*.json artifact in the
// directory (a downloaded slice of CI history), orders them by run number,
// and prints each benchmark's ns/row trajectory across the runs plus the
// first-to-last drift — the long-horizon view the two-point gate cannot
// give.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// metricUnit is the per-row throughput metric the kernel benchmarks report
// via b.ReportMetric; ns/op would also track allocation-heavy fixture noise.
const metricUnit = "ns/row"

// extractRaw returns the raw benchmark text held in data: JSON artifacts
// (leading '{') contribute their "kernel_bench" field, anything else is
// already raw text.
func extractRaw(data []byte) (string, error) {
	trimmed := strings.TrimLeft(string(data), " \t\r\n")
	if !strings.HasPrefix(trimmed, "{") {
		return string(data), nil
	}
	var artifact struct {
		KernelBench string `json:"kernel_bench"`
	}
	if err := json.Unmarshal(data, &artifact); err != nil {
		return "", fmt.Errorf("parse artifact JSON: %w", err)
	}
	return artifact.KernelBench, nil
}

// parseBench extracts the ns/row metric from Go benchmark output, keyed by
// benchmark name with the -GOMAXPROCS suffix stripped, keeping the minimum
// across repeated lines (-count repeats).
func parseBench(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		name := f[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		// After the iteration count, measurements come in "value unit" pairs.
		for i := 2; i+1 < len(f); i += 2 {
			if f[i+1] != metricUnit {
				continue
			}
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad %s value %q", name, metricUnit, f[i])
			}
			if prev, ok := out[name]; !ok || v < prev {
				out[name] = v
			}
		}
	}
	return out, sc.Err()
}

// regression is one benchmark's prev-vs-curr comparison.
type regression struct {
	name       string
	prev, curr float64
}

func (r regression) delta() float64 { return r.curr/r.prev - 1 }

// compare returns the comparisons for every benchmark present in both runs,
// sorted by name.
func compare(prev, curr map[string]float64) []regression {
	var out []regression
	for name, p := range prev {
		if c, ok := curr[name]; ok && p > 0 {
			out = append(out, regression{name: name, prev: p, curr: c})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func loadMetrics(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	raw, err := extractRaw(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m, err := parseBench(strings.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

func run(prevPath, currPath string, threshold float64, stdout io.Writer) int {
	prev, err := loadMetrics(prevPath)
	if err != nil {
		fmt.Fprintf(stdout, "::warning::benchdiff: cannot load previous run (%v); perf gate soft-passes\n", err)
		return 0
	}
	curr, err := loadMetrics(currPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: cannot load current run: %v\n", err)
		return 2
	}
	if len(prev) == 0 {
		// The artifact loaded but yielded no benchmarks: an empty or
		// unparseable kernel_bench field. Distinct from the no-common-set
		// case so a silently broken bench step is visible in the job log.
		fmt.Fprintf(stdout, "::warning::benchdiff: previous artifact %s contains no %s benchmarks (empty or unparseable kernel_bench); perf gate soft-passes\n", prevPath, metricUnit)
		return 0
	}
	common := compare(prev, curr)
	if len(common) == 0 {
		fmt.Fprintf(stdout, "::warning::benchdiff: no benchmarks common to both runs (prev has %d, curr has %d); perf gate soft-passes\n", len(prev), len(curr))
		return 0
	}
	failed := 0
	for _, r := range common {
		status := "ok"
		if r.delta() > threshold {
			status = "REGRESSION"
			failed++
		}
		fmt.Fprintf(stdout, "%-60s prev %8.3f  curr %8.3f  %+7.1f%%  %s\n",
			r.name, r.prev, r.curr, r.delta()*100, status)
	}
	if failed > 0 {
		fmt.Fprintf(stdout, "benchdiff: %d of %d benchmarks regressed by more than %.0f%% (%s)\n",
			failed, len(common), threshold*100, metricUnit)
		return 1
	}
	fmt.Fprintf(stdout, "benchdiff: %d benchmarks within %.0f%% of the previous run\n", len(common), threshold*100)
	return 0
}

// trendRun is one BENCH artifact's contribution to the trajectory: its CI
// run number and the min-over-repeats ns/row metrics it recorded.
type trendRun struct {
	run     int
	metrics map[string]float64
}

// loadTrendRun parses one BENCH_<run>.json artifact. The run number comes
// from the artifact's "run" field; when absent (hand-built fixtures) it
// falls back to the digits in the file name.
func loadTrendRun(path string) (trendRun, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return trendRun{}, err
	}
	var artifact struct {
		Run         int    `json:"run"`
		KernelBench string `json:"kernel_bench"`
	}
	if err := json.Unmarshal(data, &artifact); err != nil {
		return trendRun{}, fmt.Errorf("%s: parse artifact JSON: %w", path, err)
	}
	tr := trendRun{run: artifact.Run}
	if tr.run == 0 {
		base := strings.TrimSuffix(filepath.Base(path), ".json")
		if i := strings.LastIndex(base, "_"); i >= 0 {
			tr.run, _ = strconv.Atoi(base[i+1:])
		}
	}
	tr.metrics, err = parseBench(strings.NewReader(artifact.KernelBench))
	if err != nil {
		return trendRun{}, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}

// runTrend prints the per-benchmark ns/row trajectory over every BENCH_*.json
// in dir, ordered by run number, with the first-to-last drift per benchmark.
func runTrend(dir string, stdout io.Writer) int {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return 2
	}
	var runs []trendRun
	for _, p := range paths {
		tr, err := loadTrendRun(p)
		if err != nil {
			fmt.Fprintf(stdout, "::warning::benchdiff -trend: skipping %v\n", err)
			continue
		}
		if len(tr.metrics) > 0 {
			runs = append(runs, tr)
		}
	}
	if len(runs) == 0 {
		fmt.Fprintf(stdout, "::warning::benchdiff -trend: no BENCH_*.json artifacts with %s benchmarks under %s\n", metricUnit, dir)
		return 0
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].run < runs[j].run })

	names := map[string]bool{}
	for _, tr := range runs {
		for name := range tr.metrics {
			names[name] = true
		}
	}
	var sorted []string
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)

	head := make([]string, 0, len(runs))
	for _, tr := range runs {
		head = append(head, fmt.Sprintf("%9s", fmt.Sprintf("run %d", tr.run)))
	}
	fmt.Fprintf(stdout, "%-60s %s  %s\n", "benchmark ("+metricUnit+")", strings.Join(head, " "), "drift")
	for _, name := range sorted {
		cells := make([]string, 0, len(runs))
		first, last := 0.0, 0.0
		seen := 0
		for _, tr := range runs {
			v, ok := tr.metrics[name]
			if !ok {
				cells = append(cells, fmt.Sprintf("%9s", "-"))
				continue
			}
			if seen == 0 {
				first = v
			}
			last = v
			seen++
			cells = append(cells, fmt.Sprintf("%9.3f", v))
		}
		drift := "new"
		if seen > 1 && first > 0 {
			drift = fmt.Sprintf("%+.1f%%", (last/first-1)*100)
		}
		fmt.Fprintf(stdout, "%-60s %s  %s\n", name, strings.Join(cells, " "), drift)
	}
	fmt.Fprintf(stdout, "benchdiff: trajectory over %d runs, %d benchmarks\n", len(runs), len(sorted))
	return 0
}

func main() {
	prevPath := flag.String("prev", "", "previous run: BENCH_<run>.json artifact or raw benchmark text")
	currPath := flag.String("curr", "", "current run: raw benchmark text or BENCH_<run>.json")
	threshold := flag.Float64("threshold", 0.10, "fail when curr/prev - 1 exceeds this fraction")
	trendDir := flag.String("trend", "", "directory of BENCH_*.json artifacts to print the per-benchmark ns/row trajectory over")
	flag.Parse()
	if *trendDir != "" {
		os.Exit(runTrend(*trendDir, os.Stdout))
	}
	if *currPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -curr is required")
		os.Exit(2)
	}
	os.Exit(run(*prevPath, *currPath, *threshold, os.Stdout))
}
