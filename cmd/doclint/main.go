// Command doclint is the repository's godoc lint: it fails when an exported
// declaration in the given packages lacks a doc comment (the revive
// "exported" rule, without the dependency). The operator-pipeline and
// adaptive layers document every exported symbol with its paper
// counterpart; CI runs this tool so that invariant cannot rot:
//
//	go run ./cmd/doclint ./internal/exec ./internal/adaptive
//
// Exit status is 1 when any symbol is undocumented, with one line per
// finding (file:line: symbol).
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint <package-dir> [package-dir...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		dir = strings.TrimPrefix(dir, "./")
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		for _, pkg := range pkgs {
			for name, file := range pkg.Files {
				bad += lintFile(fset, filepath.ToSlash(name), file)
			}
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d undocumented exported symbol(s)\n", bad)
		os.Exit(1)
	}
}

// lintFile reports every exported top-level declaration of the file that
// carries no doc comment.
func lintFile(fset *token.FileSet, name string, file *ast.File) int {
	bad := 0
	report := func(pos token.Pos, symbol string) {
		fmt.Printf("%s: exported %s has no doc comment\n", fset.Position(pos), symbol)
		bad++
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil && receiverExported(d) {
				report(d.Pos(), d.Name.Name)
			}
		case *ast.GenDecl:
			if d.Tok != token.TYPE && d.Tok != token.VAR && d.Tok != token.CONST {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(n.Pos(), n.Name)
						}
					}
				}
			}
		}
	}
	return bad
}

// receiverExported reports whether a method's receiver type is exported
// (methods on unexported types need no doc comment — godoc hides them).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}
