// Command adaptived runs the Section 7 adaptive data placer demo: a skewed
// scan workload on an RR placement, with the placer balancing socket
// utilization live. It prints a timeline of placement decisions and the
// before/after throughput.
package main

import (
	"flag"
	"fmt"

	"numacs"
)

func main() {
	var (
		rows    = flag.Int("rows", 200_000, "rows per column")
		cols    = flag.Int("cols", 32, "columns")
		clients = flag.Int("clients", 512, "concurrent clients")
		hot     = flag.Float64("hot", 0.8, "probability of querying the hot half of columns")
		period  = flag.Float64("period", 0.02, "placer period (virtual s)")
		horizon = flag.Float64("horizon", 0.6, "total virtual time (s)")
		budget  = flag.Int64("replica-budget-mib", numacs.DefaultAdaptiveConfig().ReplicaBudgetBytes>>20,
			"replica memory budget in MiB (0 disables adaptive replication)")
	)
	flag.Parse()

	machine := numacs.FourSocketIvyBridge()
	engine := numacs.NewEngine(machine, 1)
	table := numacs.GenerateDataset(numacs.DatasetConfig{
		Rows: *rows, Columns: *cols, BitcaseMin: 12, BitcaseMax: 21,
		Seed: 1, Synthetic: true,
	})
	engine.Placer.PlaceRRBlocks(table) // hot half of columns on half the sockets

	cfg := numacs.DefaultAdaptiveConfig()
	cfg.Period = *period
	cfg.ReplicaBudgetBytes = *budget << 20
	placer := numacs.NewAdaptivePlacer(engine, &numacs.Catalog{Tables: []*numacs.Table{table}}, cfg)
	engine.Sim.AddActor(placer)

	cl := numacs.NewClients(engine, table, numacs.ClientsConfig{
		N: *clients, Selectivity: 0.00001, Parallel: true,
		Strategy: numacs.Bound,
		Chooser:  numacs.SkewedChoice{HotProb: *hot},
		Seed:     2,
	})
	cl.Start()

	// Report throughput in windows so convergence is visible.
	window := *horizon / 6
	fmt.Printf("skewed workload (%d clients, %.0f%% hot), adaptive placer every %.0fms\n\n",
		*clients, *hot*100, *period*1e3)
	fmt.Printf("%-12s  %12s  %s\n", "window", "TP (q/min)", "per-socket memTP (GiB/s)")
	for w := 0; w < 6; w++ {
		engine.Counters.Reset()
		engine.Sim.Run(float64(w+1) * window)
		fmt.Printf("%5.0f-%3.0f ms  %12.0f ", float64(w)*window*1e3, float64(w+1)*window*1e3,
			engine.Counters.ThroughputQPM(window))
		for _, v := range engine.Counters.MemoryThroughputGiBs(window) {
			fmt.Printf(" %5.1f", v)
		}
		fmt.Println()
	}

	fmt.Printf("\nplacement decisions (%d, %d pages moved, %d pages copied, replica bytes %d KiB peak %d KiB of %d KiB budget):\n",
		len(placer.Actions), placer.PagesMoved, placer.PagesCopied,
		placer.ReplicaBytes()>>10, placer.PeakReplicaBytes>>10, cfg.ReplicaBudgetBytes>>10)
	for _, a := range placer.Actions {
		switch a.Kind {
		case "move":
			fmt.Printf("  t=%6.1fms  move         %-8s S%d -> S%d\n", a.Time*1e3, a.Column, a.From+1, a.To+1)
		case "shrink":
			fmt.Printf("  t=%6.1fms  shrink       %-8s -> %d parts\n", a.Time*1e3, a.Column, a.Parts)
		case "replicate":
			fmt.Printf("  t=%6.1fms  replicate    %-8s + copy on S%d (%d KiB)\n",
				a.Time*1e3, a.Column, a.To+1, a.Bytes>>10)
		case "drop-replica":
			fmt.Printf("  t=%6.1fms  drop-replica %-8s - copy on S%d (%d KiB freed)\n",
				a.Time*1e3, a.Column, a.From+1, a.Bytes>>10)
		default:
			fmt.Printf("  t=%6.1fms  %-12s %-8s -> %d parts (new on S%d)\n",
				a.Time*1e3, a.Kind, a.Column, a.Parts, a.To+1)
		}
	}
}
